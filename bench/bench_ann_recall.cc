// Recall-vs-work curve of the sublinear candidate sources against the exact
// streaming engine: for clustered synthetic embeddings, sweep the IVF probe
// width and report recall@10, the fraction of target rows scanned per
// query, and wall time; LSH rows give the bucket-union baseline. The recall
// and scan-fraction gauges (ann/recall10/*, ann/scan_frac/*) are
// deterministic at any thread count and gate in bench_diff_gate_ann_recall;
// the timing gauges (ann/ms/*) are machine-dependent and skipped there.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/align/candidate_source.h"
#include "src/align/topk.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/common/table_printer.h"
#include "src/math/matrix.h"

namespace {

using namespace openea;

/// Clustered targets: `clusters` uniform centers, each row a center plus
/// small Gaussian noise — the regime where cluster routing must recover the
/// exact neighbours (which are overwhelmingly same-cluster rows).
math::Matrix ClusteredTargets(size_t n, size_t dim, size_t clusters,
                              uint64_t seed) {
  Rng rng(seed);
  math::Matrix centers(clusters, dim);
  centers.FillUniform(rng, 1.0f);
  math::Matrix out(n, dim);
  for (size_t i = 0; i < n; ++i) {
    const auto center = centers.Row(i % clusters);
    auto row = out.Row(i);
    for (size_t d = 0; d < dim; ++d) {
      row[d] = center[d] +
               0.05f * static_cast<float>(rng.NextGaussian());
    }
  }
  return out;
}

/// Mean recall@k: |approx top-k ids ∩ exact top-k ids| / k per query.
double RecallAtK(const align::TopKResult& exact,
                 const align::TopKResult& approx, size_t k) {
  double total = 0.0;
  for (size_t i = 0; i < exact.rows; ++i) {
    const auto truth = exact.Row(i);
    const auto got = approx.Row(i);
    size_t hit = 0;
    for (size_t t = 0; t < k; ++t) {
      if (truth[t].index < 0) continue;
      for (size_t s = 0; s < k; ++s) {
        if (got[s].index == truth[t].index) {
          ++hit;
          break;
        }
      }
    }
    total += static_cast<double>(hit) / static_cast<double>(k);
  }
  return exact.rows > 0 ? total / static_cast<double>(exact.rows) : 0.0;
}

uint64_t Counter(const telemetry::MetricsSnapshot& snapshot,
                 const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it != snapshot.counters.end() ? it->second : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace openea;
  const auto args = bench::ParseArgs("ann_recall", argc, argv, 1, 2);
  bench::BeginRun(args);
  // The scan accounting below reads the cand/* counters, so collection must
  // be on even without --json.
  if (!telemetry::Enabled()) telemetry::SetCollectForTesting(true);

  // Fixed sizes (not scale-derived): the committed baseline gates these
  // gauges exactly, so the worked set must be identical across machines.
  const std::vector<size_t> sizes = {1000, 4000};
  const size_t dim = 32;
  const size_t k = 10;
  const size_t num_queries = 256;
  const std::vector<size_t> probes = {1, 2, 4, 8, 16};

  std::printf("== ANN candidate sources vs exact top-%zu (cosine) ==\n", k);
  TablePrinter table({"N", "source", "recall@10", "scan frac", "ms"});
  double headline_recall = 0.0, headline_scan_frac = 1.0;
  for (const size_t n : sizes) {
    const math::Matrix targets = ClusteredTargets(n, dim, 16, args.seed);
    // Queries are a strided sample of the target rows themselves: the
    // exact neighbourhood is unambiguous and recall isolates the routing
    // quality of the index, not the data geometry.
    math::Matrix queries(num_queries, dim);
    for (size_t q = 0; q < num_queries; ++q) {
      const auto src = targets.Row((q * n) / num_queries);
      std::copy(src.begin(), src.end(), queries.Row(q).begin());
    }
    const std::string nstr = std::to_string(n);

    align::CandidateSourceConfig exact_config;
    auto exact = align::CreateCandidateSourceOrDie(exact_config);
    OPENEA_CHECK(exact->Index(targets).ok());
    Stopwatch exact_watch;
    const align::TopKResult truth = exact->TopK(queries, k);
    const double exact_ms = exact_watch.ElapsedMillis();
    telemetry::SetGauge("ann/ms/exact_n" + nstr, exact_ms);
    table.AddRow({nstr, "exact", "1.000", "1.000", FormatDouble(exact_ms, 2)});

    const auto measure = [&](align::CandidateSource& source,
                             const std::string& label,
                             const std::string& scanned_counter) {
      const uint64_t scanned_before =
          Counter(telemetry::SnapshotMetrics(), scanned_counter);
      Stopwatch watch;
      const align::TopKResult approx = source.TopK(queries, k);
      const double ms = watch.ElapsedMillis();
      const uint64_t scanned =
          Counter(telemetry::SnapshotMetrics(), scanned_counter) -
          scanned_before;
      const double recall = RecallAtK(truth, approx, k);
      const double scan_frac =
          static_cast<double>(scanned) /
          (static_cast<double>(num_queries) * static_cast<double>(n));
      telemetry::SetGauge("ann/recall10/n" + nstr + "/" + label, recall);
      telemetry::SetGauge("ann/scan_frac/n" + nstr + "/" + label, scan_frac);
      telemetry::SetGauge("ann/ms/n" + nstr + "/" + label, ms);
      table.AddRow({nstr, label, FormatDouble(recall, 3),
                    FormatDouble(scan_frac, 3), FormatDouble(ms, 2)});
      return std::make_pair(recall, scan_frac);
    };

    for (const size_t nprobe : probes) {
      align::CandidateSourceConfig config;
      config.kind = align::CandidateSourceKind::kAnnIvf;
      config.seed = args.seed;
      config.ivf_nprobe = nprobe;
      auto ann = align::CreateCandidateSourceOrDie(config);
      OPENEA_CHECK(ann->Index(targets).ok());
      const auto [recall, scan_frac] = measure(
          *ann, "ivf_probe" + std::to_string(nprobe), "cand/ann_ivf/scanned");
      if (n >= 4000 && nprobe == 8) {
        headline_recall = recall;
        headline_scan_frac = scan_frac;
      }
    }

    align::CandidateSourceConfig lsh_config;
    lsh_config.kind = align::CandidateSourceKind::kLsh;
    lsh_config.seed = args.seed;
    auto lsh = align::CreateCandidateSourceOrDie(lsh_config);
    OPENEA_CHECK(lsh->Index(targets).ok());
    measure(*lsh, "lsh", "cand/lsh/scanned");
    std::fflush(stdout);
  }
  table.Print(std::cout);

  // The acceptance bar of this bench (also pinned by the committed
  // baseline): at N >= 4000 the IVF index at nprobe=8 recovers >= 95% of
  // the exact top-10 while scanning < 25% of the targets per query.
  OPENEA_CHECK_GE(headline_recall, 0.95)
      << "IVF recall@10 collapsed at n=4000, nprobe=8";
  OPENEA_CHECK_LT(headline_scan_frac, 0.25)
      << "IVF scan fraction not sublinear at n=4000, nprobe=8";
  std::printf(
      "Shape check: recall@10 climbs toward 1.0 with nprobe while the\n"
      "scanned fraction stays ~nprobe/lists; at N=4000, nprobe=8 the IVF\n"
      "index reaches recall %.3f scanning %.1f%% of targets per query\n"
      "(the exact engine scans 100%%).\n",
      headline_recall, headline_scan_frac * 100.0);
  return bench::Finish(args);
}
