// Reproduces Figure 8: average running time of each approach on the V1
// datasets (log-scale bar chart rendered as text). With --threads=N it also
// reports the serial-vs-parallel speedup of the compute-core kernels (Gemm,
// SimilarityMatrix) so the running-time study doubles as the scaling check
// for the parallel substrate.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/align/similarity.h"
#include "src/common/parallel.h"
#include "src/common/stopwatch.h"
#include "src/common/table_printer.h"
#include "src/core/registry.h"
#include "src/math/matrix.h"

namespace {

using namespace openea;

/// Median-of-repeats wall time of `fn` in seconds.
template <typename Fn>
double TimeIt(Fn&& fn, int repeats = 3) {
  double best = 1e30;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

/// Serial-vs-parallel wall time of the two dominant kernels at `threads`.
void PrintKernelSpeedup(int threads) {
  Rng rng(7);
  math::Matrix a(256, 256), b(256, 256), c;
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  math::Matrix emb1(800, 64), emb2(800, 64);
  emb1.FillUniform(rng, 1.0f);
  emb2.FillUniform(rng, 1.0f);

  auto gemm = [&] { Gemm(a, b, c); };
  auto sim = [&] {
    auto s = align::SimilarityMatrix(emb1, emb2,
                                     align::DistanceMetric::kCosine);
    (void)s;
  };

  SetThreads(1);
  const double gemm_serial = TimeIt(gemm);
  const double sim_serial = TimeIt(sim);
  SetThreads(threads);
  const double gemm_par = TimeIt(gemm);
  const double sim_par = TimeIt(sim);

  std::printf("== Compute-core kernel speedup (%d thread%s) ==\n", threads,
              threads == 1 ? "" : "s");
  TablePrinter table({"Kernel", "Serial ms", "Parallel ms", "Speedup"});
  table.AddRow({"Gemm 256x256x256", FormatDouble(gemm_serial * 1e3, 2),
                FormatDouble(gemm_par * 1e3, 2),
                FormatDouble(gemm_serial / gemm_par, 2) + "x"});
  table.AddRow({"SimilarityMatrix 800x800 (d=64)",
                FormatDouble(sim_serial * 1e3, 2),
                FormatDouble(sim_par * 1e3, 2),
                FormatDouble(sim_serial / sim_par, 2) + "x"});
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace openea;
  const auto args = bench::ParseArgs("running_time", argc, argv, 1, 150);
  bench::BeginRun(args);
  const core::TrainConfig config = bench::MakeTrainConfig(args);

  PrintKernelSpeedup(args.threads);

  const auto datasets =
      core::BuildBenchmarkSuite(args.scale, /*include_v2=*/false, args.seed);

  std::printf("== Figure 8: running time on the V1 datasets (%s) ==\n",
              args.scale.label.c_str());
  TablePrinter table({"Approach", "Mean sec", "Log bar"});
  for (const auto& name : args.approaches) {
    double total = 0.0;
    for (const auto& dataset : datasets) {
      total += core::RunCrossValidation(name, dataset, config, 1)
                   .mean_seconds;
    }
    const double mean = total / static_cast<double>(datasets.size());
    const int bars =
        static_cast<int>(10.0 * std::log10(std::max(mean, 0.01) * 100.0));
    table.AddRow({name, FormatDouble(mean, 2),
                  std::string(static_cast<size_t>(std::max(bars, 1)), '#')});
    std::fflush(stdout);
  }
  table.Print(std::cout);

  std::printf(
      "Shape check (paper Fig. 8): BootEA is the slowest (truncated\n"
      "sampling + bootstrapping); RSN4EA is also slow (path training);\n"
      "KDCoE/AttrE pay for literal encoding; MTransE and GCNAlign are the\n"
      "cheapest.\n");
  return bench::Finish(args);
}
