// Reproduces Figure 8: average running time of each approach on the V1
// datasets (log-scale bar chart rendered as text).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"
#include "src/core/registry.h"

int main(int argc, char** argv) {
  using namespace openea;
  const auto args = bench::ParseArgs(argc, argv, 1, 150);
  const core::TrainConfig config = bench::MakeTrainConfig(args);

  const auto datasets =
      core::BuildBenchmarkSuite(args.scale, /*include_v2=*/false, args.seed);

  std::printf("== Figure 8: running time on the V1 datasets (%s) ==\n",
              args.scale.label.c_str());
  TablePrinter table({"Approach", "Mean sec", "Log bar"});
  for (const auto& name : core::ApproachNames()) {
    double total = 0.0;
    for (const auto& dataset : datasets) {
      total += core::RunCrossValidation(name, dataset, config, 1)
                   .mean_seconds;
    }
    const double mean = total / static_cast<double>(datasets.size());
    const int bars =
        static_cast<int>(10.0 * std::log10(std::max(mean, 0.01) * 100.0));
    table.AddRow({name, FormatDouble(mean, 2),
                  std::string(static_cast<size_t>(std::max(bars, 1)), '#')});
    std::fflush(stdout);
  }
  table.Print(std::cout);

  std::printf(
      "Shape check (paper Fig. 8): BootEA is the slowest (truncated\n"
      "sampling + bootstrapping); RSN4EA is also slow (path training);\n"
      "KDCoE/AttrE pay for literal encoding; MTransE and GCNAlign are the\n"
      "cheapest.\n");
  return 0;
}
