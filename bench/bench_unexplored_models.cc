// Reproduces Figure 11: entity-alignment Hits@1 of the "unexplored" KG
// embedding models (TransH/R/D, HolE, SimplE, RotatE, ProjE, ConvE) on the
// MTransE chassis across all V1 dataset families, against the MTransE
// baseline.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"
#include "src/core/registry.h"

int main(int argc, char** argv) {
  using namespace openea;
  const auto args = bench::ParseArgs("unexplored_models", argc, argv, 1, 150);
  bench::BeginRun(args);
  const core::TrainConfig config = bench::MakeTrainConfig(args);

  const char* kModels[] = {"MTransE",        "MTransE-TransH",
                           "MTransE-TransR", "MTransE-TransD",
                           "MTransE-HolE",   "MTransE-SimplE",
                           "MTransE-RotatE", "MTransE-DistMult",
                           "MTransE-ProjE",  "MTransE-ConvE"};

  const auto datasets =
      core::BuildBenchmarkSuite(args.scale, /*include_v2=*/false, args.seed);
  std::printf("== Figure 11: unexplored KG embedding models, Hits@1 ==\n");
  TablePrinter table({"Model", "EN-FR", "EN-DE", "D-W", "D-Y"});
  for (const char* name : kModels) {
    std::vector<std::string> row = {name};
    for (const auto& dataset : datasets) {
      const auto result =
          core::RunCrossValidation(name, dataset, config, args.folds);
      row.push_back(FormatDouble(result.hits1.mean, 3));
      std::fflush(stdout);
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::printf(
      "Shape check (paper Fig. 11 / Sect. 6.2): TransH and TransD are\n"
      "stable improvements over positive-only MTransE (negative sampling +\n"
      "multi-mapping handling); TransR and HolE collapse (TransR needs\n"
      "relation alignment) — confirming the paper's conclusion that not\n"
      "all link-prediction models suit entity alignment. Known deviation:\n"
      "in this reproduction RotatE/SimplE also collapse under the linear\n"
      "transformation chassis (their multiplicative/rotational geometry\n"
      "does not survive a least-squares map at our scale), whereas the\n"
      "paper's RotatE was the best semantic-matching model.\n");
  return bench::Finish(args);
}
