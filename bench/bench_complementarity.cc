// Reproduces Figure 12: the Venn decomposition of correct alignment found
// by OpenEA (best embedding approach), LogMap, and PARIS on EN-FR.

#include <cstdio>
#include <unordered_set>

#include "bench/bench_common.h"
#include "src/conventional/conventional.h"
#include "src/core/registry.h"
#include "src/eval/metrics.h"

int main(int argc, char** argv) {
  using namespace openea;
  const auto args = bench::ParseArgs("complementarity", argc, argv, 1, 200);
  bench::BeginRun(args);
  const core::TrainConfig config = bench::MakeTrainConfig(args);

  const auto dataset = core::BuildBenchmarkDataset(
      datagen::HeterogeneityProfile::EnFr(), args.scale, false, args.seed);
  const auto& reference = dataset.pair.reference;

  auto key_of = [](const kg::AlignmentPair& p) {
    return (static_cast<int64_t>(p.left) << 32) ^
           static_cast<int64_t>(p.right);
  };
  std::unordered_set<int64_t> ref_keys;
  for (const auto& p : reference) ref_keys.insert(key_of(p));

  // Correct pairs found by each system.
  auto correct_of = [&](const kg::Alignment& found) {
    std::unordered_set<int64_t> keys;
    for (const auto& p : found) {
      const int64_t k = key_of(p);
      if (ref_keys.count(k) > 0) keys.insert(k);
    }
    return keys;
  };

  conventional::ConventionalOptions conv;
  conv.translator = dataset.pair.dictionary.size() > 0
                        ? &dataset.pair.dictionary
                        : nullptr;
  const auto logmap = correct_of(
      conventional::RunLogMap(dataset.pair.kg1, dataset.pair.kg2, conv));
  const auto paris = correct_of(
      conventional::RunParis(dataset.pair.kg1, dataset.pair.kg2, conv));

  // OpenEA: best approach's greedy matching over the full reference space.
  const auto result = core::RunCrossValidation("RDGCN", dataset, config, 1);
  std::unordered_set<int64_t> openea;
  {
    const auto correct = eval::CorrectlyMatched(
        result.first_fold_model, result.first_fold_test,
        align::DistanceMetric::kCosine, align::InferenceStrategy::kGreedy);
    // Train/valid pairs are supervision — count them as found (they are
    // known), matching the paper's full-KG protocol for the conventional
    // systems.
    for (const auto& p : reference) {
      openea.insert(key_of(p));
    }
    std::unordered_set<int64_t> test_keys;
    for (const auto& p : result.first_fold_test) test_keys.insert(key_of(p));
    for (size_t i = 0; i < result.first_fold_test.size(); ++i) {
      if (!correct[i]) openea.erase(key_of(result.first_fold_test[i]));
    }
  }

  size_t all3 = 0, oe_lm = 0, oe_pa = 0, lm_pa = 0;
  size_t oe_only = 0, lm_only = 0, pa_only = 0, none = 0;
  for (const auto& p : reference) {
    const int64_t k = key_of(p);
    const bool in_oe = openea.count(k) > 0;
    const bool in_lm = logmap.count(k) > 0;
    const bool in_pa = paris.count(k) > 0;
    if (in_oe && in_lm && in_pa) ++all3;
    else if (in_oe && in_lm) ++oe_lm;
    else if (in_oe && in_pa) ++oe_pa;
    else if (in_lm && in_pa) ++lm_pa;
    else if (in_oe) ++oe_only;
    else if (in_lm) ++lm_only;
    else if (in_pa) ++pa_only;
    else ++none;
  }
  const double n = static_cast<double>(reference.size());
  std::printf("== Figure 12: complementarity on %s ==\n",
              dataset.name.c_str());
  std::printf("All three:          %5.2f%%\n", 100.0 * all3 / n);
  std::printf("OpenEA & LogMap:    %5.2f%%\n", 100.0 * oe_lm / n);
  std::printf("OpenEA & PARIS:     %5.2f%%\n", 100.0 * oe_pa / n);
  std::printf("LogMap & PARIS:     %5.2f%%\n", 100.0 * lm_pa / n);
  std::printf("OpenEA only:        %5.2f%%\n", 100.0 * oe_only / n);
  std::printf("LogMap only:        %5.2f%%\n", 100.0 * lm_only / n);
  std::printf("PARIS only:         %5.2f%%\n", 100.0 * pa_only / n);
  std::printf("Found by none:      %5.2f%%\n", 100.0 * none / n);
  std::printf("OpenEA finds %.2f%% that LogMap misses and %.2f%% that PARIS "
              "misses.\n",
              100.0 * (oe_only + oe_pa) / n, 100.0 * (oe_only + oe_lm) / n);

  std::printf(
      "\nShape check (paper Fig. 12): a large core is found by all three\n"
      "systems; each system also finds alignment the others miss; a\n"
      "residual fraction is found by none — motivating hybrid systems.\n");
  return bench::Finish(args);
}
