// Reproduces Table 7: precision / recall / F1 of LogMap, PARIS, and the
// best embedding-based approach on every dataset family (V1 and V2).

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"
#include "src/conventional/conventional.h"
#include "src/core/registry.h"
#include "src/eval/metrics.h"

int main(int argc, char** argv) {
  using namespace openea;
  const auto args = bench::ParseArgs("conventional_comparison", argc, argv, 1, 200);
  bench::BeginRun(args);
  const core::TrainConfig config = bench::MakeTrainConfig(args);

  // The paper compares against the best OpenEA approach per dataset; we
  // use the overall leaders (RDGCN / BootEA / MultiKE) and report the best.
  const char* kCandidates[] = {"RDGCN", "BootEA", "MultiKE"};

  std::printf("== Table 7: conventional vs. embedding-based (%s) ==\n",
              args.scale.label.c_str());
  TablePrinter table({"Dataset", "System", "Precision", "Recall", "F1"});
  for (const auto& dataset :
       core::BuildBenchmarkSuite(args.scale, /*include_v2=*/true,
                                 args.seed)) {
    conventional::ConventionalOptions conv;
    conv.translator = dataset.pair.dictionary.size() > 0
                          ? &dataset.pair.dictionary
                          : nullptr;
    const auto report = [&](const char* system, const kg::Alignment& found) {
      const auto prf = eval::ComparePairs(found, dataset.pair.reference);
      table.AddRow({dataset.name, system, FormatDouble(prf.precision, 3),
                    FormatDouble(prf.recall, 3), FormatDouble(prf.f1, 3)});
    };
    report("LogMap",
           conventional::RunLogMap(dataset.pair.kg1, dataset.pair.kg2, conv));
    report("PARIS",
           conventional::RunParis(dataset.pair.kg1, dataset.pair.kg2, conv));

    // Best embedding approach: Hits@1 equals P = R = F1 in the 1-to-1 test
    // protocol (paper Sect. 6.3).
    double best = -1.0;
    std::string best_name;
    for (const char* name : kCandidates) {
      const auto result =
          core::RunCrossValidation(name, dataset, config, 1);
      if (result.hits1.mean > best) {
        best = result.hits1.mean;
        best_name = name;
      }
      std::fflush(stdout);
    }
    table.AddRow({dataset.name, "OpenEA (" + best_name + ")",
                  FormatDouble(best, 3), FormatDouble(best, 3),
                  FormatDouble(best, 3)});
    table.AddSeparator();
  }
  table.Print(std::cout);

  std::printf(
      "Shape check (paper Table 7): PARIS is the strongest system overall;\n"
      "LogMap is competitive except on D-W, where Wikidata's opaque local\n"
      "names starve its lexical index; the best embedding approach shows no\n"
      "superiority over the conventional systems.\n");
  return bench::Finish(args);
}
