// Scalar vs dispatched kernel-table A/B at the telemetry level: times every
// kernel in src/math/kernels.h under the scalar reference table and under
// the table the runtime dispatch selected, and lands the results in the
// --json document as kernels/ms/<kernel>/{scalar,dispatch} and
// kernels/speedup/<kernel> gauges, attributed to the active backend via the
// `kernels` config key and the kernels/backend gauge (bench_common.h).
//
// The work loop is single-threaded and fixed-count on purpose: the emitted
// counters are deterministic, so the bench_diff gate
// (bench/run_bench_diff_gate.cmake) can gate this document exactly on work
// amount while --skip-ing the timing gauges.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/common/table_printer.h"
#include "src/math/kernels.h"

int main(int argc, char** argv) {
  using namespace openea;
  using math::kernels::Backend;
  using math::kernels::KernelTable;
  const auto args = bench::ParseArgs("micro_kernels", argc, argv, 1, 1);
  bench::BeginRun(args);

  const KernelTable& scalar = math::kernels::Table(Backend::kScalar);
  const KernelTable& dispatch = math::kernels::Active();
  const char* backend =
      math::kernels::BackendName(math::kernels::ActiveBackend());

  // One vector length for the whole sweep: the library's row width is the
  // training dim (default 32); 512 shows the wide-row ceiling. Iteration
  // counts are fixed so the kernels/iters counter is deterministic.
  const size_t n = 512;
  const size_t rows = 256;
  const int iters = args.epochs * 2000;  // --epochs scales the measurement.

  Rng rng(args.seed);
  std::vector<float> a(n), b(rows * n), out(rows), y(n), acc(n, 0.5f);
  for (float& v : a) v = rng.NextFloat(-1, 1);
  for (float& v : b) v = rng.NextFloat(-1, 1);
  for (float& v : y) v = rng.NextFloat(-1, 1);

  // Each case runs `body(table)` `iters` times and reports the per-call
  // ratio. A volatile sink defeats dead-code elimination without touching
  // the timed loop.
  volatile float sink = 0.0f;
  const auto time_case = [&](const KernelTable& kt, const auto& body) {
    body(kt);  // Warm-up; untimed.
    Stopwatch watch;
    for (int i = 0; i < iters; ++i) body(kt);
    return watch.ElapsedMillis();
  };

  std::printf("== Kernel table: scalar vs dispatched (%s), n=%zu ==\n",
              backend, n);
  TablePrinter table({"kernel", "scalar ms", "dispatch ms", "speedup"});
  double worst_speedup = 0.0, best_speedup = 0.0;
  const auto run = [&](const std::string& name, const auto& body) {
    const double scalar_ms = time_case(scalar, body);
    const double dispatch_ms = time_case(dispatch, body);
    const double speedup =
        dispatch_ms > 0.0 ? scalar_ms / dispatch_ms : 0.0;
    if (worst_speedup == 0.0 || speedup < worst_speedup) {
      worst_speedup = speedup;
    }
    if (speedup > best_speedup) best_speedup = speedup;
    table.AddRow({name, FormatDouble(scalar_ms, 2),
                  FormatDouble(dispatch_ms, 2), FormatDouble(speedup, 2)});
    telemetry::SetGauge("kernels/ms/" + name + "/scalar", scalar_ms);
    telemetry::SetGauge("kernels/ms/" + name + "/dispatch", dispatch_ms);
    telemetry::SetGauge("kernels/speedup/" + name, speedup);
    telemetry::IncrCounter("kernels/cases");
    telemetry::IncrCounter("kernels/iters", static_cast<uint64_t>(iters));
  };

  run("dot", [&](const KernelTable& kt) {
    sink += kt.dot(a.data(), b.data(), n);
  });
  run("squared_l2", [&](const KernelTable& kt) {
    sink += kt.squared_l2(a.data(), n);
  });
  run("l1", [&](const KernelTable& kt) { sink += kt.l1(a.data(), n); });
  run("squared_l2_distance", [&](const KernelTable& kt) {
    sink += kt.squared_l2_distance(a.data(), b.data(), n);
  });
  run("l1_distance", [&](const KernelTable& kt) {
    sink += kt.l1_distance(a.data(), b.data(), n);
  });
  run("dot_rows", [&](const KernelTable& kt) {
    kt.dot_rows(a.data(), b.data(), n, out.data(), rows, n);
    sink += out[0];
  });
  run("squared_l2_distance_rows", [&](const KernelTable& kt) {
    kt.squared_l2_distance_rows(a.data(), b.data(), n, out.data(), rows, n);
    sink += out[0];
  });
  run("l1_distance_rows", [&](const KernelTable& kt) {
    kt.l1_distance_rows(a.data(), b.data(), n, out.data(), rows, n);
    sink += out[0];
  });
  run("axpy", [&](const KernelTable& kt) {
    kt.axpy(1e-9f, a.data(), y.data(), n);
    sink += y[0];
  });
  run("scale", [&](const KernelTable& kt) {
    kt.scale(1.0000001f, y.data(), n);
    sink += y[0];
  });
  run("add", [&](const KernelTable& kt) {
    kt.add(a.data(), b.data(), y.data(), n);
    sink += y[0];
  });
  run("sub", [&](const KernelTable& kt) {
    kt.sub(a.data(), b.data(), y.data(), n);
    sink += y[0];
  });
  run("hadamard", [&](const KernelTable& kt) {
    kt.hadamard(a.data(), b.data(), y.data(), n);
    sink += y[0];
  });
  // Small GEMM block: 32 x 512 x 32, the shape of one parallel row chunk.
  std::vector<float> gemm_out(32 * 32);
  run("gemm_block", [&](const KernelTable& kt) {
    kt.gemm_block(b.data(), n, b.data(), 32, gemm_out.data(), 32, 32, n,
                  32);
    sink += gemm_out[0];
  });
  run("adagrad_update", [&](const KernelTable& kt) {
    kt.adagrad_update(y.data(), acc.data(), a.data(), n, 1e-9f, 1e-8f);
    sink += y[0];
  });
  run("sgd_update", [&](const KernelTable& kt) {
    kt.sgd_update(y.data(), a.data(), n, 1e-9f);
    sink += y[0];
  });
  (void)sink;
  table.Print(std::cout);

  std::printf(
      "Shape check: with AVX2 dispatched, the reduction and row-batch\n"
      "kernels should beat scalar severalfold at n=%zu while the\n"
      "elementwise kernels are bound by memory bandwidth (smaller but\n"
      ">= 1x wins). Under OPENEA_KERNELS=scalar both columns time the\n"
      "same table and every speedup is ~1. Active backend: %s;\n"
      "speedup range %.2fx .. %.2fx.\n",
      n, backend, worst_speedup, best_speedup);
  return bench::Finish(args);
}
