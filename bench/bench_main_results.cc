// Reproduces Table 5 (the main cross-validation comparison of the 12
// approaches on all dataset families, V1 and V2) and prints the Table 9
// required-information matrix from the approaches' declared requirements.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"
#include "src/core/registry.h"

int main(int argc, char** argv) {
  using namespace openea;
  const auto args = bench::ParseArgs("main_results", argc, argv, /*default_folds=*/2,
                                     /*default_epochs=*/200);
  bench::BeginRun(args);
  const core::TrainConfig config = bench::MakeTrainConfig(args);

  // ---- Table 9 first (static metadata, instant) ------------------------------
  {
    std::printf("== Table 9: required information of the approaches ==\n");
    TablePrinter table({"Approach", "Rel. triples", "Att. triples",
                        "Pre-aligned ent.", "Pre-aligned prop.",
                        "Word emb."});
    auto cell = [](core::Requirement r) -> std::string {
      switch (r) {
        case core::Requirement::kMandatory: return "*";
        case core::Requirement::kOptional: return "o";
        case core::Requirement::kNotApplicable: return "";
      }
      return "";
    };
    for (const auto& name : args.approaches) {
      const auto approach = core::CreateApproachOrDie(name, config);
      const auto req = approach->requirements();
      table.AddRow({name, cell(req.relation_triples),
                    cell(req.attribute_triples),
                    cell(req.pre_aligned_entities),
                    cell(req.pre_aligned_properties),
                    cell(req.word_embeddings)});
    }
    table.Print(std::cout);
    std::printf("(* mandatory, o optional)\n\n");
  }

  // ---- Table 5 ----------------------------------------------------------------
  std::printf(
      "== Table 5: %d-fold cross-validation, %s datasets, %d epochs ==\n",
      args.folds, args.scale.label.c_str(), args.epochs);
  const auto datasets =
      core::BuildBenchmarkSuite(args.scale, /*include_v2=*/true, args.seed);

  for (const auto& dataset : datasets) {
    TablePrinter table({"Approach", "Hits@1", "Hits@5", "MRR", "sec/fold"});
    std::string best_name;
    double best_hits1 = -1.0;
    for (const auto& name : args.approaches) {
      const auto result =
          core::RunCrossValidation(name, dataset, config, args.folds);
      table.AddRow({name, bench::Cell(result.hits1),
                    bench::Cell(result.hits5), bench::Cell(result.mrr),
                    FormatDouble(result.mean_seconds, 1)});
      if (result.hits1.mean > best_hits1) {
        best_hits1 = result.hits1.mean;
        best_name = name;
      }
      std::fflush(stdout);
    }
    std::printf("\n-- %s (best: %s, Hits@1 %.3f) --\n", dataset.name.c_str(),
                best_name.c_str(), best_hits1);
    table.Print(std::cout);
    std::fflush(stdout);
  }

  std::printf(
      "Shape check (paper Table 5): RDGCN, BootEA and MultiKE lead; KDCoE\n"
      "is close behind; purely relation-based approaches (MTransE, IPTransE,\n"
      "SEA, GCNAlign) trail; relation-based approaches improve on the dense\n"
      "V2 variants while literal-based leaders are less sensitive.\n");
  return bench::Finish(args);
}
