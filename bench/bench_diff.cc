// Perf regression gate over two BENCH_<name>.json telemetry documents
// (src/common/bench_compare.h has the comparison policy):
//
//   ./build/bench/bench_diff baseline.json candidate.json [flags]
//
// Exits 0 when the candidate is within tolerance of the baseline, 1 with
// one diagnostic line per regression otherwise, 2 on usage/IO errors. The
// bench_diff_gate ctest (bench/run_bench_diff_gate.cmake) runs it against
// the committed tiny-scale baseline under bench/baselines/ so CI catches
// perf and work-amount drift.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/bench_compare.h"
#include "src/common/json.h"
#include "src/common/strings.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: bench_diff baseline.json candidate.json [flags]\n"
      "  --span-tolerance=R     allowed relative span total_ms increase\n"
      "                         (default 0.40; a 50%% regression fails)\n"
      "  --counter-tolerance=R  allowed relative counter/count drift\n"
      "                         (default 0 = exact)\n"
      "  --gauge-tolerance=R    allowed relative gauge drift (default 1e-6)\n"
      "  --min-span-ms=T        skip the wall-time gate for spans whose\n"
      "                         baseline total_ms is below T (default 50)\n"
      "  --skip=p1,p2           key prefixes to ignore (default\n"
      "                         telemetry/,mem/,fault/,heartbeat/)\n"
      "  --skip-counters=p1,p2  prefixes whose counters (and histogram\n"
      "                         counts) are informational-only: drift is\n"
      "                         noted, never a regression; gauges under the\n"
      "                         same prefix still gate (default robust/)\n"
      "  --ignore-config        do not require identical config objects\n"
      "  --help                 this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  using openea::json::Value;
  openea::bench::DiffOptions options;
  std::string baseline_path, candidate_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (openea::StartsWith(arg, "--span-tolerance=")) {
      options.span_tolerance = std::atof(arg.c_str() + 17);
    } else if (openea::StartsWith(arg, "--counter-tolerance=")) {
      options.counter_tolerance = std::atof(arg.c_str() + 20);
    } else if (openea::StartsWith(arg, "--gauge-tolerance=")) {
      options.gauge_tolerance = std::atof(arg.c_str() + 18);
    } else if (openea::StartsWith(arg, "--min-span-ms=")) {
      options.min_span_ms = std::atof(arg.c_str() + 14);
    } else if (openea::StartsWith(arg, "--skip=")) {
      options.skip_prefixes = openea::Split(arg.substr(7), ',');
    } else if (openea::StartsWith(arg, "--skip-counters=")) {
      options.skip_counter_prefixes = openea::Split(arg.substr(16), ',');
    } else if (arg == "--ignore-config") {
      options.check_config = false;
    } else if (openea::StartsWith(arg, "--")) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      std::fprintf(stderr, "too many positional arguments\n");
      PrintUsage(stderr);
      return 2;
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) {
    PrintUsage(stderr);
    return 2;
  }

  Value baseline, candidate;
  for (const auto& [path, doc] :
       {std::pair<const std::string&, Value&>{baseline_path, baseline},
        std::pair<const std::string&, Value&>{candidate_path, candidate}}) {
    const openea::Status read = openea::json::ReadFile(path, &doc);
    if (!read.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   read.ToString().c_str());
      return 2;
    }
  }

  const openea::bench::DiffReport report =
      openea::bench::CompareBenchDocuments(baseline, candidate, options);
  for (const std::string& note : report.notes) {
    std::fprintf(stderr, "note: %s\n", note.c_str());
  }
  for (const std::string& regression : report.regressions) {
    std::fprintf(stderr, "REGRESSION: %s\n", regression.c_str());
  }
  if (!report.ok()) {
    std::fprintf(stderr, "bench_diff: %zu regression(s) against %s\n",
                 report.regressions.size(), baseline_path.c_str());
    return 1;
  }
  std::printf("bench_diff: %s within tolerance of %s\n",
              candidate_path.c_str(), baseline_path.c_str());
  return 0;
}
