// Exploratory bench for the paper's Sect. 7.2 future directions:
//   (1) Unsupervised entity alignment: literal-harvest pseudo-seeds +
//       self-training vs. the supervised counterpart.
//   (2) Large-scale entity alignment: LSH blocking vs. exact greedy search
//       (candidate-space reduction and accuracy retention).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/align/blocking.h"
#include "src/approaches/unsupervised.h"
#include "src/common/stopwatch.h"
#include "src/core/registry.h"
#include "src/eval/metrics.h"

int main(int argc, char** argv) {
  using namespace openea;
  const auto args = bench::ParseArgs("future_directions", argc, argv, 1, 200);
  bench::BeginRun(args);
  const core::TrainConfig config = bench::MakeTrainConfig(args);

  const auto dataset = core::BuildBenchmarkDataset(
      datagen::HeterogeneityProfile::DbpYg(), args.scale, false, args.seed);
  const auto folds = eval::MakeFolds(dataset.pair.reference, 5, 0.1,
                                     config.seed ^ 0xF01D);
  const core::AlignmentTask task = core::MakeTask(dataset.pair, folds[0]);

  // ---- (1) Unsupervised vs supervised -----------------------------------------
  std::printf("== Future direction 1: unsupervised entity alignment (%s) ==\n",
              dataset.name.c_str());
  {
    approaches::UnsupervisedEa unsupervised(config);
    const double h_unsup =
        eval::EvaluateRanking(unsupervised.Train(task), task.test,
                              align::DistanceMetric::kCosine)
            .hits1;
    const double h_sup =
        eval::EvaluateRanking(
            core::CreateApproachOrDie("IMUSE", config)->Train(task), task.test,
            align::DistanceMetric::kCosine)
            .hits1;
    std::printf("Unsupervised (0 seeds):    Hits@1 = %.3f\n", h_unsup);
    std::printf("Supervised IMUSE (20%%):    Hits@1 = %.3f\n", h_sup);
    std::printf(
        "Observation: distant supervision from literal overlap recovers a\n"
        "large share of the supervised accuracy on literal-rich pairs.\n\n");
  }

  // ---- (2) LSH blocking --------------------------------------------------------
  std::printf("== Future direction 2: LSH blocking for large-scale EA ==\n");
  {
    auto approach = core::CreateApproachOrDie("MultiKE", config);
    const core::AlignmentModel model = approach->Train(task);
    std::vector<kg::EntityId> lefts, rights;
    for (const auto& p : task.test) {
      lefts.push_back(p.left);
      rights.push_back(p.right);
    }
    const math::Matrix src = eval::GatherRows(model.emb1, lefts);
    const math::Matrix tgt = eval::GatherRows(model.emb2, rights);

    Stopwatch exact_watch;
    const auto sim =
        align::SimilarityMatrix(src, tgt, align::DistanceMetric::kCosine);
    const auto exact = align::GreedyMatch(sim);
    const double exact_ms = exact_watch.ElapsedMillis();
    size_t exact_hits = 0;
    for (size_t i = 0; i < exact.size(); ++i) {
      if (exact[i] == static_cast<int>(i)) ++exact_hits;
    }

    std::printf("%-28s %10s %10s\n", "Matcher", "Hits@1", "ms");
    std::printf("%-28s %10.3f %10.1f\n", "Exact greedy",
                static_cast<double>(exact_hits) / exact.size(), exact_ms);
    for (const int bits : {3, 5, 8}) {
      Stopwatch watch;
      const auto blocked =
          align::BlockedGreedyMatch(src, tgt, bits, /*num_tables=*/8,
                                    args.seed);
      const double ms = watch.ElapsedMillis();
      size_t hits = 0;
      for (size_t i = 0; i < blocked.size(); ++i) {
        if (blocked[i] == static_cast<int>(i)) ++hits;
      }
      std::printf("%-28s %10.3f %10.1f\n",
                  ("LSH-blocked (" + std::to_string(bits) + " bits)").c_str(),
                  static_cast<double>(hits) / blocked.size(), ms);
    }
    std::printf(
        "Observation: the bit count is a recall/candidate-set dial — few\n"
        "bits keep Hits@1 near the exact search while already pruning\n"
        "candidates; many bits prune aggressively and lose recall. At this\n"
        "benchmark's tiny scale the wall-clock win is modest; the pruning\n"
        "ratio is what transfers to the paper's very-large-KG setting.\n");
  }
  return bench::Finish(args);
}
