// Tests for the BENCH json comparison policy behind bench/bench_diff.cc
// (src/common/bench_compare.h) and for the histogram quantile estimates it
// leans on: identical documents pass, a 50% span-time regression fails,
// counters gate exactly, config mismatches short-circuit, and skip
// prefixes exempt self-observation keys.

#include <gtest/gtest.h>

#include <string>

#include "src/common/bench_compare.h"
#include "src/common/json.h"
#include "src/common/telemetry.h"

namespace openea {
namespace {

json::Value ParseDoc(const std::string& text) {
  json::Value doc;
  EXPECT_TRUE(json::Parse(text, &doc).ok()) << text;
  return doc;
}

constexpr char kBaseline[] = R"({
  "schema_version": 1,
  "config": {"seed": 7, "threads": 2},
  "counters": {"train/positives": 1200, "telemetry/trace_dropped": 5},
  "gauges": {"train/last_loss": 0.25, "mem/peak_rss_mb": 120.0},
  "histograms": {"train/epoch_ms": {"count": 4, "mean": 10.0}},
  "spans": [
    {"path": "cross_validation", "count": 1, "total_ms": 400.0},
    {"path": "cross_validation/fold", "count": 2, "total_ms": 390.0},
    {"path": "tiny", "count": 8, "total_ms": 2.0}
  ]
})";

/// Scales every span's total_ms in place by `factor`.
void ScaleSpans(json::Value& doc, double factor) {
  for (json::Value& span : doc.object()["spans"].array()) {
    json::Value& total = span.object()["total_ms"];
    total = json::Value(total.number() * factor);
  }
}

TEST(BenchDiffTest, IdenticalDocumentsPass) {
  const json::Value doc = ParseDoc(kBaseline);
  const auto report =
      bench::CompareBenchDocuments(doc, doc, bench::DiffOptions{});
  EXPECT_TRUE(report.ok())
      << (report.regressions.empty() ? "" : report.regressions.front());
}

TEST(BenchDiffTest, FiftyPercentSpanRegressionFailsUnderDefaults) {
  const json::Value baseline = ParseDoc(kBaseline);
  json::Value candidate = ParseDoc(kBaseline);
  ScaleSpans(candidate, 1.5);
  const auto report = bench::CompareBenchDocuments(baseline, candidate,
                                                   bench::DiffOptions{});
  // Default tolerance allows +40%: both long spans trip, the 2ms span is
  // below min_span_ms and stays exempt.
  EXPECT_EQ(report.regressions.size(), 2u);
}

TEST(BenchDiffTest, FasterCandidateIsNotARegression) {
  const json::Value baseline = ParseDoc(kBaseline);
  json::Value candidate = ParseDoc(kBaseline);
  ScaleSpans(candidate, 0.2);
  EXPECT_TRUE(
      bench::CompareBenchDocuments(baseline, candidate, bench::DiffOptions{})
          .ok());
}

TEST(BenchDiffTest, CounterDriftAndMissingKeysGateExactly) {
  const json::Value baseline = ParseDoc(kBaseline);
  json::Value drifted = ParseDoc(kBaseline);
  drifted.object()["counters"].object()["train/positives"] =
      json::Value(1201);
  EXPECT_FALSE(
      bench::CompareBenchDocuments(baseline, drifted, bench::DiffOptions{})
          .ok());

  json::Value missing = ParseDoc(kBaseline);
  missing.object()["counters"].object().erase("train/positives");
  EXPECT_FALSE(
      bench::CompareBenchDocuments(baseline, missing, bench::DiffOptions{})
          .ok());
}

TEST(BenchDiffTest, SkipPrefixesExemptSelfObservationKeys) {
  const json::Value baseline = ParseDoc(kBaseline);
  json::Value candidate = ParseDoc(kBaseline);
  // Dropped-event counts and RSS are machine/load-dependent by design.
  candidate.object()["counters"].object()["telemetry/trace_dropped"] =
      json::Value(9000);
  candidate.object()["gauges"].object()["mem/peak_rss_mb"] =
      json::Value(480.0);
  EXPECT_TRUE(
      bench::CompareBenchDocuments(baseline, candidate, bench::DiffOptions{})
          .ok());
}

TEST(BenchDiffTest, ConfigMismatchShortCircuits) {
  const json::Value baseline = ParseDoc(kBaseline);
  json::Value candidate = ParseDoc(kBaseline);
  candidate.object()["config"].object()["threads"] = json::Value(8);
  // Also doctor a counter: with mismatched configs only the config line
  // should be reported — the tolerances below it are meaningless.
  candidate.object()["counters"].object()["train/positives"] = json::Value(1);
  const auto report = bench::CompareBenchDocuments(baseline, candidate,
                                                   bench::DiffOptions{});
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_NE(report.regressions[0].find("config mismatch"), std::string::npos);

  bench::DiffOptions ignore_config;
  ignore_config.check_config = false;
  EXPECT_FALSE(
      bench::CompareBenchDocuments(baseline, candidate, ignore_config)
          .ok());  // Now the doctored counter is what fails.
}

TEST(BenchDiffTest, NewKeysAreNotesNotRegressions) {
  const json::Value baseline = ParseDoc(kBaseline);
  json::Value candidate = ParseDoc(kBaseline);
  candidate.object()["counters"].object()["align/new_counter"] =
      json::Value(3);
  const auto report = bench::CompareBenchDocuments(baseline, candidate,
                                                   bench::DiffOptions{});
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("align/new_counter"), std::string::npos);
}

TEST(BenchDiffTest, FaultCountersAreInformationalNeverGating) {
  const json::Value baseline = ParseDoc(kBaseline);
  json::Value candidate = ParseDoc(kBaseline);
  // A candidate that retried folds, resumed from a checkpoint, and wrote
  // checkpoints reports it all under fault/* — none of it may gate.
  auto& counters = candidate.object()["counters"].object();
  counters["fault/retries"] = json::Value(3);
  counters["fault/diverged_folds"] = json::Value(1);
  counters["fault/resumed_folds"] = json::Value(2);
  counters["fault/checkpoints_written"] = json::Value(5);
  const auto report = bench::CompareBenchDocuments(baseline, candidate,
                                                   bench::DiffOptions{});
  EXPECT_TRUE(report.ok())
      << (report.regressions.empty() ? "" : report.regressions.front());
  // Skipped prefix: not even noted as new keys.
  EXPECT_TRUE(report.notes.empty());
}

TEST(BenchDiffTest, FaultCounterDriftIsExemptBothDirections) {
  // A baseline that already has fault counters must not gate a candidate
  // whose counts differ (or that has none at all: healthy run).
  json::Value baseline = ParseDoc(kBaseline);
  baseline.object()["counters"].object()["fault/retries"] = json::Value(4);
  const json::Value candidate = ParseDoc(kBaseline);
  EXPECT_TRUE(
      bench::CompareBenchDocuments(baseline, candidate, bench::DiffOptions{})
          .ok());
}

TEST(BenchDiffTest, DegradedFoldAnnotationsAreNotes) {
  const json::Value baseline = ParseDoc(kBaseline);
  json::Value candidate = ParseDoc(kBaseline);
  candidate.object()["faults"] = ParseDoc(R"json([
    {"approach": "mtranse", "dataset": "EN-FR-15K-scale (V1)", "fold": 3,
     "retries": 2, "verdict": "non_finite"}
  ])json");
  const auto report = bench::CompareBenchDocuments(baseline, candidate,
                                                   bench::DiffOptions{});
  EXPECT_TRUE(report.ok())
      << (report.regressions.empty() ? "" : report.regressions.front());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("degraded fold"), std::string::npos);
}

TEST(BenchDiffTest, RobustGaugesGateExactly) {
  // The robustness degradation gauges are the workload's headline result:
  // any drift is a real behaviour change and must gate.
  json::Value baseline = ParseDoc(kBaseline);
  baseline.object()["gauges"].object()["robust/hits1/n20_d20/MTransE"] =
      json::Value(0.5);
  json::Value candidate = ParseDoc(kBaseline);
  candidate.object()["gauges"].object()["robust/hits1/n20_d20/MTransE"] =
      json::Value(0.4);
  const auto report = bench::CompareBenchDocuments(baseline, candidate,
                                                   bench::DiffOptions{});
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_NE(report.regressions[0].find("robust/hits1"), std::string::npos);

  // A missing gauge gates too.
  const auto missing = bench::CompareBenchDocuments(
      baseline, ParseDoc(kBaseline), bench::DiffOptions{});
  ASSERT_EQ(missing.regressions.size(), 1u);
  EXPECT_NE(missing.regressions[0].find("missing in candidate"),
            std::string::npos);
}

TEST(BenchDiffTest, RobustCountersAreInformationalNotesOnly) {
  // Counters under robust/ record the noise realization (how many seeds
  // were corrupted); drift or absence is surfaced as a note, mirroring the
  // fault/* treatment — but unlike fault/* the keys are still *reported*.
  json::Value baseline = ParseDoc(kBaseline);
  baseline.object()["counters"].object()["robust/corrupted_train_seeds"] =
      json::Value(106);
  json::Value candidate = ParseDoc(kBaseline);
  candidate.object()["counters"].object()["robust/corrupted_train_seeds"] =
      json::Value(212);
  const auto report = bench::CompareBenchDocuments(baseline, candidate,
                                                   bench::DiffOptions{});
  EXPECT_TRUE(report.ok())
      << (report.regressions.empty() ? "" : report.regressions.front());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("informational counter"), std::string::npos);

  // Absent in the candidate: also a note, not a regression.
  const auto absent = bench::CompareBenchDocuments(
      baseline, ParseDoc(kBaseline), bench::DiffOptions{});
  EXPECT_TRUE(absent.ok())
      << (absent.regressions.empty() ? "" : absent.regressions.front());
  ASSERT_EQ(absent.notes.size(), 1u);
  EXPECT_NE(absent.notes[0].find("missing in candidate"), std::string::npos);
}

TEST(BenchDiffTest, RobustHistogramCountDriftIsANote) {
  json::Value baseline = ParseDoc(kBaseline);
  baseline.object()["histograms"].object()["robust/noise_draws"] =
      ParseDoc(R"({"count": 10, "mean": 1.0})");
  json::Value candidate = ParseDoc(kBaseline);
  candidate.object()["histograms"].object()["robust/noise_draws"] =
      ParseDoc(R"({"count": 20, "mean": 1.0})");
  const auto report = bench::CompareBenchDocuments(baseline, candidate,
                                                   bench::DiffOptions{});
  EXPECT_TRUE(report.ok())
      << (report.regressions.empty() ? "" : report.regressions.front());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("robust/noise_draws"), std::string::npos);
}

TEST(BenchDiffTest, SkipCountersFlagReplacesDefaultPrefixSet) {
  // --skip-counters replaces the default {robust/}: with a different set,
  // robust/ counter drift gates exactly again.
  json::Value baseline = ParseDoc(kBaseline);
  baseline.object()["counters"].object()["robust/corrupted_train_seeds"] =
      json::Value(106);
  json::Value candidate = ParseDoc(kBaseline);
  candidate.object()["counters"].object()["robust/corrupted_train_seeds"] =
      json::Value(212);
  bench::DiffOptions options;
  options.skip_counter_prefixes = {"other/"};
  EXPECT_FALSE(
      bench::CompareBenchDocuments(baseline, candidate, options).ok());
}

TEST(BenchDiffTest, HeartbeatGaugesAreInformationalNeverGating) {
  // Live-progress gauges capture whatever instant the run happened to
  // flush at — wildly different values (or their absence) must not gate.
  json::Value baseline = ParseDoc(kBaseline);
  baseline.object()["gauges"].object()["heartbeat/epoch"] = json::Value(10);
  json::Value candidate = ParseDoc(kBaseline);
  auto& gauges = candidate.object()["gauges"].object();
  gauges["heartbeat/fold"] = json::Value(4);
  gauges["heartbeat/rows_per_sec"] = json::Value(1e6);
  const auto report = bench::CompareBenchDocuments(baseline, candidate,
                                                   bench::DiffOptions{});
  EXPECT_TRUE(report.ok())
      << (report.regressions.empty() ? "" : report.regressions.front());
  EXPECT_TRUE(report.notes.empty());
}

TEST(BenchDiffTest, WindowsSectionNeverGates) {
  // The sliding-window section is run-relative wall-clock state; the
  // comparison policy ignores it entirely, in both directions.
  json::Value baseline = ParseDoc(kBaseline);
  baseline.object()["windows"] = ParseDoc(R"json({
    "serve/latency_ms": {"count": 100, "p95": 2.5, "rate_per_sec": 40.0}
  })json");
  json::Value candidate = ParseDoc(kBaseline);
  candidate.object()["windows"] = ParseDoc(R"json({
    "mem/rss_mb": {"count": 3, "p95": 200.0, "rate_per_sec": 1.0}
  })json");
  const auto report = bench::CompareBenchDocuments(baseline, candidate,
                                                   bench::DiffOptions{});
  EXPECT_TRUE(report.ok())
      << (report.regressions.empty() ? "" : report.regressions.front());
  EXPECT_TRUE(report.notes.empty());
}

TEST(BenchDiffTest, HistogramCountDriftFails) {
  const json::Value baseline = ParseDoc(kBaseline);
  json::Value candidate = ParseDoc(kBaseline);
  candidate.object()["histograms"].object()["train/epoch_ms"]
      .object()["count"] = json::Value(5);
  EXPECT_FALSE(
      bench::CompareBenchDocuments(baseline, candidate, bench::DiffOptions{})
          .ok());
}

/// Quantiles interpolate within the bucket containing the target rank,
/// anchored at the observed min/max at the distribution's edges.
TEST(HistogramQuantileTest, InterpolatesWithinBuckets) {
  telemetry::ResetForTesting();
  telemetry::SetCollectForTesting(true);
  // 100 observations 1..100 ms into the default log-spaced buckets.
  for (int i = 1; i <= 100; ++i) {
    telemetry::Observe("q/test", static_cast<double>(i));
  }
  const auto snap = telemetry::SnapshotMetrics();
  const auto& hist = snap.histograms.at("q/test");
  EXPECT_EQ(hist.count, 100u);
  EXPECT_NEAR(hist.Quantile(0.0), hist.min, 1e-9);
  EXPECT_NEAR(hist.Quantile(1.0), hist.max, 1e-9);
  // Bucketed estimates are coarse; they must land in the right region and
  // be monotone.
  const double p50 = hist.P50(), p95 = hist.P95(), p99 = hist.P99();
  EXPECT_GT(p50, 25.0);
  EXPECT_LT(p50, 75.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p99, 80.0);
  EXPECT_LE(p99, hist.max);
  telemetry::SetCollectForTesting(false);
  telemetry::ResetForTesting();
}

TEST(HistogramQuantileTest, EmptyHistogramQuantileIsZero) {
  telemetry::HistogramSnapshot empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
}

}  // namespace
}  // namespace openea
