// Contract suite for the CandidateSource API (src/align/candidate_source.h),
// registered under the `ann` ctest label. Pins:
//  * the exact source is *bit*-identical to StreamingTopK at 1 and 8 threads
//  * sublinear sources score their candidates through the shared cell
//    kernel, so every (id, value) they return matches the exact scores
//  * the IVF index recovers >= 95% of the exact top-10 on clustered data
//    while scanning a sublinear fraction of the targets
//  * LshBlocker::Candidates returns a sorted, deduplicated id list (the
//    determinism regression this PR fixed)
//  * config validation rejects out-of-range values with field-naming errors

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "src/align/blocking.h"
#include "src/align/candidate_source.h"
#include "src/align/inference.h"
#include "src/align/similarity.h"
#include "src/align/topk.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/common/telemetry.h"
#include "src/eval/metrics.h"

namespace openea::align {
namespace {

math::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  math::Matrix m(rows, cols);
  m.FillUniform(rng, 1.0f);
  return m;
}

/// Clustered targets (same regime as bench_ann_recall): tight Gaussian
/// blobs around uniform centers, where exact neighbours are same-cluster.
math::Matrix ClusteredMatrix(size_t rows, size_t cols, size_t clusters,
                             uint64_t seed) {
  Rng rng(seed);
  math::Matrix centers(clusters, cols);
  centers.FillUniform(rng, 1.0f);
  math::Matrix out(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    const auto center = centers.Row(i % clusters);
    auto row = out.Row(i);
    for (size_t d = 0; d < cols; ++d) {
      row[d] = center[d] + 0.05f * static_cast<float>(rng.NextGaussian());
    }
  }
  return out;
}

struct ThreadGuard {
  explicit ThreadGuard(int threads) { SetThreads(threads); }
  ~ThreadGuard() { SetThreads(1); }
};

void ExpectBitIdentical(const TopKResult& a, const TopKResult& b) {
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.k, b.k);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].index, b.entries[i].index) << "entry " << i;
    // Bit-level: distinguishes -0.0/0.0 and compares NaN payloads equal.
    EXPECT_EQ(std::bit_cast<uint32_t>(a.entries[i].value),
              std::bit_cast<uint32_t>(b.entries[i].value))
        << "entry " << i;
  }
}

TEST(ExactSourceTest, BitIdenticalToStreamingTopKAtAnyThreadCount) {
  const math::Matrix tgt = RandomMatrix(157, 24, 11);
  const math::Matrix queries = RandomMatrix(63, 24, 12);
  for (const bool csls : {false, true}) {
    for (const auto metric :
         {DistanceMetric::kCosine, DistanceMetric::kEuclidean,
          DistanceMetric::kManhattan, DistanceMetric::kInner}) {
      TopKOptions options;
      options.k = 7;
      options.metric = metric;
      options.csls = csls;
      CandidateSourceConfig config;
      config.metric = metric;
      config.csls = csls;
      auto source = CreateCandidateSourceOrDie(config);
      ASSERT_TRUE(source->Index(tgt).ok());
      EXPECT_STREQ(source->Name(), "exact");
      EXPECT_EQ(source->csls(), csls);
      for (const int threads : {1, 8}) {
        ThreadGuard guard(threads);
        const TopKResult expected = StreamingTopK(queries, tgt, options);
        const TopKResult got = source->TopK(queries, 7);
        ExpectBitIdentical(expected, got);
      }
    }
  }
}

TEST(ExactSourceTest, EmptyIndexReturnsAllPadding) {
  CandidateSourceConfig config;
  auto source = CreateCandidateSourceOrDie(config);
  ASSERT_TRUE(source->Index(math::Matrix(0, 16)).ok());
  EXPECT_TRUE(source->indexed());
  EXPECT_EQ(source->num_targets(), 0u);
  const TopKResult result = source->TopK(RandomMatrix(5, 16, 3), 4);
  ASSERT_EQ(result.entries.size(), 20u);
  for (const auto& entry : result.entries) {
    EXPECT_EQ(entry.index, -1);
    EXPECT_TRUE(std::isinf(entry.value) && entry.value < 0);
  }
}

TEST(LshBlockerTest, CandidatesAreSortedAndDeduplicated) {
  // Regression: the bucket union used to surface in unordered_set iteration
  // order, which made every downstream tie-break (and therefore the matches
  // of blocked inference) run-to-run nondeterministic.
  const math::Matrix targets = RandomMatrix(300, 16, 21);
  LshBlocker blocker(16, /*bits=*/4, /*num_tables=*/6, /*seed=*/5);
  blocker.Index(targets);
  bool saw_multi = false;
  for (size_t q = 0; q < 50; ++q) {
    const std::vector<int> candidates = blocker.Candidates(targets.Row(q));
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    EXPECT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
                candidates.end())
        << "duplicate id in candidate set";
    if (candidates.size() > 1) saw_multi = true;
    // Self-query must find itself: identical vectors share every signature.
    EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                   static_cast<int>(q)));
  }
  EXPECT_TRUE(saw_multi) << "degenerate blocking: every bucket a singleton";
}

TEST(LshSourceTest, ScoresMatchExactSourceForReturnedIds) {
  const math::Matrix tgt = RandomMatrix(220, 16, 31);
  const math::Matrix queries = RandomMatrix(40, 16, 32);
  CandidateSourceConfig lsh_config;
  lsh_config.kind = CandidateSourceKind::kLsh;
  lsh_config.lsh_bits = 4;
  auto lsh = CreateCandidateSourceOrDie(lsh_config);
  ASSERT_TRUE(lsh->Index(tgt).ok());

  CandidateSourceConfig exact_config;
  auto exact = CreateCandidateSourceOrDie(exact_config);
  ASSERT_TRUE(exact->Index(tgt).ok());
  // k = N: the exact result enumerates every target's score.
  const TopKResult full = exact->TopK(queries, tgt.rows());

  const TopKResult got = lsh->TopK(queries, 5);
  ASSERT_EQ(got.rows, queries.rows());
  for (size_t i = 0; i < got.rows; ++i) {
    for (const TopKEntry& entry : got.Row(i)) {
      if (entry.index < 0) continue;
      const auto all = full.Row(i);
      const auto it = std::find_if(
          all.begin(), all.end(),
          [&](const TopKEntry& e) { return e.index == entry.index; });
      ASSERT_NE(it, all.end());
      EXPECT_EQ(std::bit_cast<uint32_t>(entry.value),
                std::bit_cast<uint32_t>(it->value))
          << "shared-kernel score mismatch for id " << entry.index;
    }
  }
}

TEST(AnnIvfSourceTest, HighRecallOnClusteredDataWithSublinearScan) {
  constexpr size_t kN = 2000, kDim = 24, kQueries = 128, kK = 10;
  const math::Matrix tgt = ClusteredMatrix(kN, kDim, 16, 7);
  math::Matrix queries(kQueries, kDim);
  for (size_t q = 0; q < kQueries; ++q) {
    const auto src = tgt.Row((q * kN) / kQueries);
    std::copy(src.begin(), src.end(), queries.Row(q).begin());
  }

  CandidateSourceConfig exact_config;
  auto exact = CreateCandidateSourceOrDie(exact_config);
  ASSERT_TRUE(exact->Index(tgt).ok());
  const TopKResult truth = exact->TopK(queries, kK);

  CandidateSourceConfig ann_config;
  ann_config.kind = CandidateSourceKind::kAnnIvf;
  ann_config.ivf_nprobe = 8;
  auto ann = CreateCandidateSourceOrDie(ann_config);
  telemetry::ResetForTesting();
  telemetry::SetCollectForTesting(true);
  ASSERT_TRUE(ann->Index(tgt).ok());
  EXPECT_STREQ(ann->Name(), "ann_ivf");
  const TopKResult got = ann->TopK(queries, kK);
  const auto snapshot = telemetry::SnapshotMetrics();
  telemetry::SetCollectForTesting(false);
  telemetry::ResetForTesting();

  double recall = 0.0;
  for (size_t i = 0; i < kQueries; ++i) {
    const auto want = truth.Row(i);
    const auto have = got.Row(i);
    size_t hit = 0;
    for (const TopKEntry& w : want) {
      if (w.index < 0) continue;
      for (const TopKEntry& h : have) {
        if (h.index == w.index) {
          ++hit;
          break;
        }
      }
    }
    recall += static_cast<double>(hit) / kK;
  }
  recall /= kQueries;
  EXPECT_GE(recall, 0.95);

  // Sublinear scan accounting: strictly less than a quarter of the
  // exhaustive N-per-query work, as gated by bench_ann_recall.
  const auto scanned = snapshot.counters.find("cand/ann_ivf/scanned");
  ASSERT_NE(scanned, snapshot.counters.end());
  EXPECT_LT(scanned->second, kQueries * kN / 4);
  EXPECT_EQ(snapshot.counters.at("cand/ann_ivf/queries"), kQueries);
}

TEST(AnnIvfSourceTest, DeterministicAcrossThreadCounts) {
  const math::Matrix tgt = ClusteredMatrix(900, 16, 12, 3);
  const math::Matrix queries = RandomMatrix(37, 16, 4);
  CandidateSourceConfig config;
  config.kind = CandidateSourceKind::kAnnIvf;
  config.ivf_nprobe = 4;

  TopKResult serial;
  {
    ThreadGuard guard(1);
    auto source = CreateCandidateSourceOrDie(config);
    ASSERT_TRUE(source->Index(tgt).ok());
    serial = source->TopK(queries, 6);
  }
  {
    ThreadGuard guard(8);
    auto source = CreateCandidateSourceOrDie(config);
    ASSERT_TRUE(source->Index(tgt).ok());
    const TopKResult parallel = source->TopK(queries, 6);
    ExpectBitIdentical(serial, parallel);
  }
}

TEST(AnnIvfSourceTest, DegenerateInputs) {
  CandidateSourceConfig config;
  config.kind = CandidateSourceKind::kAnnIvf;
  {
    auto source = CreateCandidateSourceOrDie(config);
    ASSERT_TRUE(source->Index(math::Matrix(0, 8)).ok());
    const TopKResult result = source->TopK(RandomMatrix(3, 8, 2), 5);
    for (const auto& entry : result.entries) EXPECT_EQ(entry.index, -1);
  }
  {
    // Fewer rows than the requested list count: lists clamp to N and the
    // index stays exhaustive-equivalent.
    config.ivf_lists = 64;
    config.ivf_nprobe = 64;
    auto source = CreateCandidateSourceOrDie(config);
    const math::Matrix tgt = RandomMatrix(5, 8, 9);
    ASSERT_TRUE(source->Index(tgt).ok());
    CandidateSourceConfig exact_config;
    auto exact = CreateCandidateSourceOrDie(exact_config);
    ASSERT_TRUE(exact->Index(tgt).ok());
    const math::Matrix queries = RandomMatrix(4, 8, 10);
    ExpectBitIdentical(exact->TopK(queries, 5), source->TopK(queries, 5));
  }
}

TEST(AnnIvfSourceTest, SingleTargetPadsKPastN) {
  CandidateSourceConfig config;
  config.kind = CandidateSourceKind::kAnnIvf;
  auto source = CreateCandidateSourceOrDie(config);
  ASSERT_TRUE(source->Index(RandomMatrix(1, 8, 13)).ok());
  const TopKResult result = source->TopK(RandomMatrix(3, 8, 14), 5);
  ASSERT_EQ(result.rows, 3u);
  ASSERT_EQ(result.k, 5u);  // As requested, even though N = 1.
  for (size_t i = 0; i < result.rows; ++i) {
    const auto row = result.Row(i);
    EXPECT_EQ(row[0].index, 0);
    EXPECT_TRUE(std::isfinite(row[0].value));
    for (size_t t = 1; t < row.size(); ++t) {
      EXPECT_EQ(row[t].index, -1);
      EXPECT_TRUE(std::isinf(row[t].value) && row[t].value < 0);
    }
  }
}

TEST(AnnIvfSourceTest, NprobePastListCountClampsToExhaustive) {
  // nprobe far beyond the list count (default lists = ceil(sqrt(5000)) = 71)
  // must clamp to "probe everything", making the index exhaustive — i.e.
  // bit-identical to the exact source — rather than reading past the list
  // array or returning an ill-defined subset.
  constexpr size_t kN = 5000;
  const math::Matrix tgt = RandomMatrix(kN, 8, 15);
  const math::Matrix queries = RandomMatrix(16, 8, 16);
  CandidateSourceConfig config;
  config.kind = CandidateSourceKind::kAnnIvf;
  config.ivf_nprobe = 100;
  auto ann = CreateCandidateSourceOrDie(config);
  ASSERT_TRUE(ann->Index(tgt).ok());
  CandidateSourceConfig exact_config;
  auto exact = CreateCandidateSourceOrDie(exact_config);
  ASSERT_TRUE(exact->Index(tgt).ok());
  ExpectBitIdentical(exact->TopK(queries, 10), ann->TopK(queries, 10));
}

TEST(AnnIvfSourceTest, AllNanTargetsYieldAllPadding) {
  // Every similarity cell is NaN, so every probe list comes back empty; the
  // result must still be well-formed: full rows of {-inf, -1} padding, never
  // a NaN score or an arbitrary "winner".
  math::Matrix tgt(12, 8);
  for (auto& v : tgt.Data()) v = std::numeric_limits<float>::quiet_NaN();
  CandidateSourceConfig config;
  config.kind = CandidateSourceKind::kAnnIvf;
  config.ivf_nprobe = 100;  // Also exercises the clamp on the NaN path.
  auto source = CreateCandidateSourceOrDie(config);
  ASSERT_TRUE(source->Index(tgt).ok());
  const TopKResult result = source->TopK(RandomMatrix(4, 8, 17), 3);
  ASSERT_EQ(result.entries.size(), 12u);
  for (const auto& entry : result.entries) {
    EXPECT_EQ(entry.index, -1);
    EXPECT_TRUE(std::isinf(entry.value) && entry.value < 0);
  }
}

TEST(CandidateSourceConfigTest, ValidationErrorPaths) {
  const auto expect_invalid = [](const CandidateSourceConfig& config,
                                 const std::string& needle) {
    const auto source = CreateCandidateSource(config);
    ASSERT_FALSE(source.ok());
    EXPECT_EQ(source.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(source.status().message().find(needle), std::string::npos)
        << "message: " << source.status().message();
  };
  CandidateSourceConfig config;
  config.kind = CandidateSourceKind::kLsh;
  config.csls = true;
  expect_invalid(config, "csls");

  config = {};
  config.kind = CandidateSourceKind::kAnnIvf;
  config.csls = true;
  expect_invalid(config, "csls");

  config = {};
  config.kind = CandidateSourceKind::kExact;
  config.csls = true;
  config.csls_k = 0;
  expect_invalid(config, "csls_k");

  config = {};
  config.kind = CandidateSourceKind::kLsh;
  config.lsh_bits = 0;
  expect_invalid(config, "lsh_bits");
  config.lsh_bits = 64;
  expect_invalid(config, "lsh_bits");

  config = {};
  config.kind = CandidateSourceKind::kLsh;
  config.lsh_tables = 0;
  expect_invalid(config, "lsh_tables");

  config = {};
  config.kind = CandidateSourceKind::kAnnIvf;
  config.ivf_nprobe = 0;
  expect_invalid(config, "ivf_nprobe");

  config = {};
  config.kind = CandidateSourceKind::kAnnIvf;
  config.ivf_iters = 0;
  expect_invalid(config, "ivf_iters");
}

TEST(InferAlignmentTest, SourceOverloadMatchesLegacyEmbeddingOverload) {
  const math::Matrix src = RandomMatrix(48, 16, 41);
  const math::Matrix tgt = RandomMatrix(48, 16, 42);
  for (const auto strategy :
       {InferenceStrategy::kGreedy, InferenceStrategy::kGreedyCsls,
        InferenceStrategy::kStableMarriage, InferenceStrategy::kKuhnMunkres}) {
    const std::vector<int> legacy = InferAlignment(
        src, tgt, DistanceMetric::kCosine, strategy);
    CandidateSourceConfig config;
    config.csls = strategy == InferenceStrategy::kGreedyCsls;
    auto source = CreateCandidateSourceOrDie(config);
    ASSERT_TRUE(source->Index(tgt).ok());
    const std::vector<int> unified = InferAlignment(*source, src, strategy);
    EXPECT_EQ(legacy, unified)
        << "strategy " << InferenceStrategyName(strategy);
  }
}

TEST(InferAlignmentTest, BlockedGreedyMatchShimStaysDeterministic) {
  const math::Matrix src = RandomMatrix(120, 16, 51);
  const math::Matrix tgt = RandomMatrix(120, 16, 52);
  const std::vector<int> first = BlockedGreedyMatch(src, tgt, 4, 4, 7);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(first, BlockedGreedyMatch(src, tgt, 4, 4, 7));
  }
}

TEST(EvaluateRankingTest, CandidateLimitedAgreesWithExhaustiveOnExactSource) {
  core::AlignmentModel model;
  model.emb1 = RandomMatrix(60, 16, 61);
  model.emb2 = RandomMatrix(60, 16, 62);
  kg::Alignment pairs;
  for (int i = 0; i < 60; ++i) pairs.push_back({i, i});

  const eval::RankingMetrics exhaustive =
      eval::EvaluateRanking(model, pairs, DistanceMetric::kCosine);
  CandidateSourceConfig config;
  auto source = CreateCandidateSourceOrDie(config);
  // candidate_k = pair count: the exact source returns every candidate, so
  // the two protocols rank identical sets.
  const eval::RankingMetrics limited =
      eval::EvaluateRanking(model, pairs, *source, pairs.size());
  EXPECT_DOUBLE_EQ(exhaustive.hits1, limited.hits1);
  EXPECT_DOUBLE_EQ(exhaustive.hits5, limited.hits5);
  EXPECT_DOUBLE_EQ(exhaustive.mr, limited.mr);
  EXPECT_DOUBLE_EQ(exhaustive.mrr, limited.mrr);
}

TEST(EvaluateRankingTest, CandidateMissesScorePessimisticRank) {
  core::AlignmentModel model;
  model.emb1 = RandomMatrix(30, 16, 71);
  model.emb2 = RandomMatrix(30, 16, 72);
  kg::Alignment pairs;
  for (int i = 0; i < 30; ++i) pairs.push_back({i, i});

  CandidateSourceConfig config;
  auto source = CreateCandidateSourceOrDie(config);
  // k = 1 on random embeddings: most true counterparts are not the top-1
  // candidate, so misses dominate and MR approaches the pessimistic
  // #targets + 1 bound. MR must never exceed it.
  const eval::RankingMetrics limited =
      eval::EvaluateRanking(model, pairs, *source, 1);
  EXPECT_LE(limited.mr, 31.0);
  EXPECT_GT(limited.mr, 1.0);
}

/// Hand-computable distractor fixture for the dangling-aware overload:
/// 4 test pairs whose left/right embeddings are the unit basis vectors
/// e0..e3 (inner(true) = 1 for every pair), plus dangling distractor rows
/// appended to emb2. Under kInner the similarity table is trivial to read
/// off, so the expected metrics below are exact doubles.
struct DistractorFixture {
  core::AlignmentModel model;
  kg::Alignment pairs;
  std::vector<kg::EntityId> dangling;
};

DistractorFixture MakeDistractorFixture() {
  DistractorFixture f;
  constexpr size_t kPairs = 4, kDim = 4;
  f.model.emb1 = math::Matrix(kPairs, kDim);
  f.model.emb2 = math::Matrix(kPairs + 3, kDim);
  for (size_t i = 0; i < kPairs; ++i) {
    f.model.emb1.At(i, i) = 1.0f;
    f.model.emb2.At(i, i) = 1.0f;
    f.pairs.push_back(
        {static_cast<kg::EntityId>(i), static_cast<kg::EntityId>(i)});
  }
  // Distractor rows (pool columns 4..6 after the 4 true rights):
  //   row 4 = 2*e1  — inner 2 with query 1, out-scoring its true (inner 1);
  //   row 5 = e0/4, row 6 = e2/4 — sub-true scores for queries 0 and 2.
  f.model.emb2.At(4, 1) = 2.0f;
  f.model.emb2.At(5, 0) = 0.25f;
  f.model.emb2.At(6, 2) = 0.25f;
  f.dangling = {4, 5, 6};
  return f;
}

TEST(EvaluateRankingTest, CandidateMissUsesMatchablePoolNotInflatedPool) {
  // At candidate_k = 1, query 1's only candidate is distractor column 4
  // (inner 2 > 1): its true counterpart is missed. The pessimistic miss rank
  // must be one past the *matchable* pool — test_pairs.size() + 1 = 5 —
  // not one past the dangling-inflated indexed pool (7 + 1 = 8). Rank 5
  // still counts for hits@5, which is exactly what separates the two
  // conventions: mr 2.0 / hits5 1.0 here vs mr 2.75 / hits5 0.75 inflated.
  const DistractorFixture f = MakeDistractorFixture();
  CandidateSourceConfig config;
  config.metric = DistanceMetric::kInner;
  auto source = CreateCandidateSourceOrDie(config);
  const eval::RankingMetrics m =
      eval::EvaluateRanking(f.model, f.pairs, f.dangling, *source, 1);
  EXPECT_DOUBLE_EQ(m.hits1, 0.75);  // Queries 0, 2, 3 rank 1; query 1 missed.
  EXPECT_DOUBLE_EQ(m.hits5, 1.0);   // Miss rank 5 <= 5.
  EXPECT_DOUBLE_EQ(m.mr, (1.0 + 5.0 + 1.0 + 1.0) / 4.0);
  EXPECT_DOUBLE_EQ(m.mrr, (1.0 + 1.0 / 5.0 + 1.0 + 1.0) / 4.0);
}

TEST(EvaluateRankingTest, DistractorsCompeteInRankingWhenCandidatesCoverPool) {
  // With candidate_k covering the whole pool nothing is missed, but the
  // distractor that out-scores query 1's true counterpart pushes its rank
  // to 2 — distractors compete in the ranking even though they are never
  // anyone's answer.
  const DistractorFixture f = MakeDistractorFixture();
  CandidateSourceConfig config;
  config.metric = DistanceMetric::kInner;
  auto source = CreateCandidateSourceOrDie(config);
  const eval::RankingMetrics m =
      eval::EvaluateRanking(f.model, f.pairs, f.dangling, *source, 7);
  EXPECT_DOUBLE_EQ(m.hits1, 0.75);
  EXPECT_DOUBLE_EQ(m.hits5, 1.0);
  EXPECT_DOUBLE_EQ(m.mr, (1.0 + 2.0 + 1.0 + 1.0) / 4.0);
  EXPECT_DOUBLE_EQ(m.mrr, (1.0 + 1.0 / 2.0 + 1.0 + 1.0) / 4.0);
}

TEST(EvaluateRankingTest, DistractorTiedWithTrueScoresMidRank) {
  // A distractor identical to pair 0's right ties it at inner 1: mid-rank
  // convention gives 1 + 0 + 0.5*1 = 1.5 for query 0.
  DistractorFixture f = MakeDistractorFixture();
  f.model.emb2.At(4, 1) = 0.0f;  // Repurpose row 4 ...
  f.model.emb2.At(4, 0) = 1.0f;  // ... as an exact copy of right 0.
  CandidateSourceConfig config;
  config.metric = DistanceMetric::kInner;
  auto source = CreateCandidateSourceOrDie(config);
  const eval::RankingMetrics m =
      eval::EvaluateRanking(f.model, f.pairs, f.dangling, *source, 7);
  EXPECT_DOUBLE_EQ(m.hits1, 0.75);  // Rank 1.5 > 1 for query 0.
  EXPECT_DOUBLE_EQ(m.hits5, 1.0);
  EXPECT_DOUBLE_EQ(m.mr, (1.5 + 1.0 + 1.0 + 1.0) / 4.0);
  EXPECT_DOUBLE_EQ(m.mrr, (1.0 / 1.5 + 1.0 + 1.0 + 1.0) / 4.0);
}

TEST(EvaluateRankingTest, EmptyDanglingDelegatesToPlainCandidateOverload) {
  core::AlignmentModel model;
  model.emb1 = RandomMatrix(25, 16, 81);
  model.emb2 = RandomMatrix(25, 16, 82);
  kg::Alignment pairs;
  for (int i = 0; i < 25; ++i) pairs.push_back({i, i});
  CandidateSourceConfig config;
  auto a = CreateCandidateSourceOrDie(config);
  auto b = CreateCandidateSourceOrDie(config);
  const eval::RankingMetrics plain = eval::EvaluateRanking(model, pairs, *a, 5);
  const eval::RankingMetrics with_empty = eval::EvaluateRanking(
      model, pairs, std::vector<kg::EntityId>(), *b, 5);
  EXPECT_DOUBLE_EQ(plain.hits1, with_empty.hits1);
  EXPECT_DOUBLE_EQ(plain.hits5, with_empty.hits5);
  EXPECT_DOUBLE_EQ(plain.mr, with_empty.mr);
  EXPECT_DOUBLE_EQ(plain.mrr, with_empty.mrr);
}

}  // namespace
}  // namespace openea::align
