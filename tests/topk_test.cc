// Equivalence suite for the streaming top-k similarity engine
// (src/align/topk.h), registered under the `topk` ctest label (the
// sanitize presets run it too). The engine's contract is *bit*-identity
// with the dense SimilarityMatrix (+ ApplyCsls) path on NaN-free inputs,
// for all four metrics, with and without CSLS, at 1 and 8 threads — so
// every comparison below is exact (EXPECT_EQ on floats/doubles), never
// approximate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/align/inference.h"
#include "src/align/similarity.h"
#include "src/align/topk.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/eval/metrics.h"

namespace openea::align {
namespace {

math::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  math::Matrix m(rows, cols);
  m.FillUniform(rng, 1.0f);
  return m;
}

/// Restores the serial default when a test body returns or fails.
struct ThreadGuard {
  explicit ThreadGuard(int threads) { SetThreads(threads); }
  ~ThreadGuard() { SetThreads(1); }
};

/// Dense reference: the exact path the streaming engine replaces.
math::Matrix DenseSim(const math::Matrix& src, const math::Matrix& tgt,
                      DistanceMetric metric, bool csls, int csls_k) {
  math::Matrix sim = SimilarityMatrix(src, tgt, metric);
  if (csls) ApplyCsls(sim, csls_k);
  return sim;
}

/// Dense top-k of one row under the engine's selection order
/// (value desc, index asc).
std::vector<TopKEntry> DenseRowTopK(std::span<const float> row, size_t k) {
  std::vector<TopKEntry> entries;
  entries.reserve(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    entries.push_back({row[j], static_cast<int>(j)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.index < b.index;
            });
  entries.resize(std::min(k, entries.size()), TopKEntry{});
  return entries;
}

const DistanceMetric kAllMetrics[] = {
    DistanceMetric::kCosine, DistanceMetric::kEuclidean,
    DistanceMetric::kManhattan, DistanceMetric::kInner};

TEST(StreamingTopKTest, BitIdenticalToDenseAllMetricsCslsThreads) {
  // Asymmetric (rows != cols) and not a multiple of any block size, with a
  // small col_block to exercise tile boundaries.
  const size_t rows = 37, cols = 53, dim = 16, k = 7;
  const math::Matrix src = RandomMatrix(rows, dim, 11);
  const math::Matrix tgt = RandomMatrix(cols, dim, 22);
  for (DistanceMetric metric : kAllMetrics) {
    for (bool csls : {false, true}) {
      const math::Matrix sim = DenseSim(src, tgt, metric, csls, 10);
      for (int threads : {1, 8}) {
        ThreadGuard guard(threads);
        TopKOptions options;
        options.k = k;
        options.metric = metric;
        options.csls = csls;
        options.col_block = 16;
        options.true_cols.resize(rows);
        for (size_t i = 0; i < rows; ++i) {
          options.true_cols[i] = static_cast<int>(i % cols);
        }
        const TopKResult result = StreamingTopK(src, tgt, options);
        ASSERT_EQ(result.rows, rows);
        ASSERT_EQ(result.k, k);
        EXPECT_EQ(result.nan_cells, 0u);
        for (size_t i = 0; i < rows; ++i) {
          const auto dense_row = sim.Row(i);
          const auto dense_topk = DenseRowTopK(dense_row, k);
          const auto streamed = result.Row(i);
          for (size_t t = 0; t < k; ++t) {
            EXPECT_EQ(streamed[t].value, dense_topk[t].value)
                << DistanceMetricName(metric) << " csls=" << csls
                << " threads=" << threads << " row=" << i << " t=" << t;
            EXPECT_EQ(streamed[t].index, dense_topk[t].index)
                << DistanceMetricName(metric) << " csls=" << csls
                << " threads=" << threads << " row=" << i << " t=" << t;
          }
          // True-column similarity and exact greater/tie counts.
          const int tc = options.true_cols[i];
          const float true_sim = dense_row[static_cast<size_t>(tc)];
          EXPECT_EQ(result.true_sim[i], true_sim);
          uint32_t greater = 0, ties = 0;
          for (size_t j = 0; j < cols; ++j) {
            if (static_cast<int>(j) == tc) continue;
            if (dense_row[j] > true_sim) {
              ++greater;
            } else if (dense_row[j] == true_sim) {
              ++ties;
            }
          }
          EXPECT_EQ(result.num_greater[i], greater);
          EXPECT_EQ(result.num_ties[i], ties);
        }
      }
    }
  }
}

TEST(StreamingTopKTest, GreedyBitIdenticalToDensePath) {
  const math::Matrix src = RandomMatrix(41, 24, 5);
  const math::Matrix tgt = RandomMatrix(29, 24, 6);
  for (DistanceMetric metric : kAllMetrics) {
    for (bool csls : {false, true}) {
      math::Matrix sim = DenseSim(src, tgt, metric, csls, 10);
      const std::vector<int> dense_match = GreedyMatch(sim);
      for (int threads : {1, 8}) {
        ThreadGuard guard(threads);
        EXPECT_EQ(StreamingGreedyMatch(src, tgt, metric, csls, 10),
                  dense_match)
            << DistanceMetricName(metric) << " csls=" << csls
            << " threads=" << threads;
      }
    }
  }
}

TEST(StreamingTopKTest, InferAlignmentOverloadMatchesDenseAllStrategies) {
  const math::Matrix src = RandomMatrix(20, 16, 7);
  const math::Matrix tgt = RandomMatrix(20, 16, 8);
  const math::Matrix sim =
      SimilarityMatrix(src, tgt, DistanceMetric::kCosine);
  for (auto strategy :
       {InferenceStrategy::kGreedy, InferenceStrategy::kGreedyCsls,
        InferenceStrategy::kStableMarriage,
        InferenceStrategy::kStableMarriageCsls,
        InferenceStrategy::kKuhnMunkres}) {
    EXPECT_EQ(InferAlignment(src, tgt, DistanceMetric::kCosine, strategy),
              InferAlignment(sim, strategy))
        << InferenceStrategyName(strategy);
  }
}

TEST(StreamingTopKTest, PadsRowsWhenFewerCandidatesThanK) {
  const math::Matrix src = RandomMatrix(4, 8, 3);
  const math::Matrix tgt = RandomMatrix(2, 8, 4);
  TopKOptions options;
  options.k = 5;
  const TopKResult result = StreamingTopK(src, tgt, options);
  for (size_t i = 0; i < 4; ++i) {
    const auto row = result.Row(i);
    EXPECT_GE(row[0].index, 0);
    EXPECT_GE(row[1].index, 0);
    for (size_t t = 2; t < 5; ++t) {
      EXPECT_EQ(row[t].index, -1);
      EXPECT_EQ(row[t].value, -std::numeric_limits<float>::infinity());
    }
  }
}

TEST(StreamingTopKTest, NanCellsAreSkippedDeterministically) {
  math::Matrix src = RandomMatrix(3, 4, 9);
  math::Matrix tgt = RandomMatrix(5, 4, 10);
  // Poison target row 2: every similarity against it is NaN.
  for (float& v : tgt.Row(2)) v = std::numeric_limits<float>::quiet_NaN();
  // Poison source row 1: all of its candidates are NaN.
  for (float& v : src.Row(1)) v = std::numeric_limits<float>::quiet_NaN();
  TopKOptions options;
  options.k = 5;
  options.metric = DistanceMetric::kEuclidean;
  const TopKResult result = StreamingTopK(src, tgt, options);
  // Rows 0 and 2 lose exactly the poisoned target; row 1 loses everything.
  EXPECT_EQ(result.nan_cells, 5u + 2u);
  EXPECT_EQ(result.BestIndex(1), -1);
  for (size_t i : {size_t{0}, size_t{2}}) {
    EXPECT_GE(result.BestIndex(i), 0);
    for (const TopKEntry& e : result.Row(i)) {
      EXPECT_NE(e.index, 2) << "row " << i << " kept a NaN candidate";
    }
  }
}

TEST(StreamingTopKTest, NanTrueColumnRanksLast) {
  math::Matrix src = RandomMatrix(2, 4, 13);
  const math::Matrix tgt = RandomMatrix(6, 4, 14);
  for (float& v : src.Row(0)) v = std::numeric_limits<float>::quiet_NaN();
  TopKOptions options;
  options.k = 0;
  options.metric = DistanceMetric::kInner;
  options.true_cols = {0, 1};
  const TopKResult result = StreamingTopK(src, tgt, options);
  EXPECT_TRUE(std::isnan(result.true_sim[0]));
  EXPECT_EQ(result.num_greater[0], 6u);  // Worst possible rank.
  EXPECT_EQ(result.num_ties[0], 0u);
  EXPECT_LT(result.num_greater[1], 6u);  // Clean row unaffected.
}

/// Replicates the dense evaluation path EvaluateRanking used before the
/// streaming engine: materialize the full test similarity matrix, apply
/// CSLS, mid-rank every pair, and accumulate in the same 64-row chunk
/// order.
eval::RankingMetrics DenseEvaluateRanking(const core::AlignmentModel& model,
                                          const kg::Alignment& pairs,
                                          DistanceMetric metric, bool csls) {
  std::vector<kg::EntityId> lefts, rights;
  for (const auto& p : pairs) {
    lefts.push_back(p.left);
    rights.push_back(p.right);
  }
  math::Matrix sim = SimilarityMatrix(eval::GatherRows(model.emb1, lefts),
                                      eval::GatherRows(model.emb2, rights),
                                      metric);
  if (csls) ApplyCsls(sim);
  const size_t n = pairs.size();
  double hits1 = 0, hits5 = 0, mr = 0, mrr = 0;
  for (size_t chunk = 0; chunk < n; chunk += 64) {
    double c_hits1 = 0, c_hits5 = 0, c_mr = 0, c_mrr = 0;
    for (size_t i = chunk; i < std::min(n, chunk + 64); ++i) {
      const auto row = sim.Row(i);
      const float true_sim = row[i];
      size_t greater = 0, ties = 0;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        if (row[j] > true_sim) {
          ++greater;
        } else if (row[j] == true_sim) {
          ++ties;
        }
      }
      const double rank = 1.0 + static_cast<double>(greater) +
                          0.5 * static_cast<double>(ties);
      if (rank <= 1.0) c_hits1 += 1;
      if (rank <= 5.0) c_hits5 += 1;
      c_mr += rank;
      c_mrr += 1.0 / rank;
    }
    hits1 += c_hits1;
    hits5 += c_hits5;
    mr += c_mr;
    mrr += c_mrr;
  }
  eval::RankingMetrics metrics;
  metrics.hits1 = hits1 / static_cast<double>(n);
  metrics.hits5 = hits5 / static_cast<double>(n);
  metrics.mr = mr / static_cast<double>(n);
  metrics.mrr = mrr / static_cast<double>(n);
  return metrics;
}

TEST(StreamingTopKTest, EvaluateRankingBitIdenticalToDensePath) {
  const size_t n = 150, dim = 16;
  Rng rng(17);
  core::AlignmentModel model;
  model.emb1 = math::Matrix(n, dim);
  model.emb2 = math::Matrix(n, dim);
  model.emb1.FillUniform(rng, 1.0f);
  model.emb2.FillUniform(rng, 1.0f);
  // Half the pairs embed identically so hits1 is non-trivial.
  for (size_t i = 0; i < n / 2; ++i) {
    std::copy(model.emb1.Row(i).begin(), model.emb1.Row(i).end(),
              model.emb2.Row(i).begin());
  }
  kg::Alignment pairs;
  for (size_t i = 0; i < n; ++i) {
    pairs.push_back(
        {static_cast<kg::EntityId>(i), static_cast<kg::EntityId>(i)});
  }
  for (DistanceMetric metric : kAllMetrics) {
    for (bool csls : {false, true}) {
      const eval::RankingMetrics dense =
          DenseEvaluateRanking(model, pairs, metric, csls);
      for (int threads : {1, 8}) {
        ThreadGuard guard(threads);
        const eval::RankingMetrics streamed =
            eval::EvaluateRanking(model, pairs, metric, csls);
        EXPECT_EQ(streamed.hits1, dense.hits1)
            << DistanceMetricName(metric) << " csls=" << csls
            << " threads=" << threads;
        EXPECT_EQ(streamed.hits5, dense.hits5)
            << DistanceMetricName(metric) << " csls=" << csls
            << " threads=" << threads;
        EXPECT_EQ(streamed.mr, dense.mr)
            << DistanceMetricName(metric) << " csls=" << csls
            << " threads=" << threads;
        EXPECT_EQ(streamed.mrr, dense.mrr)
            << DistanceMetricName(metric) << " csls=" << csls
            << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace openea::align
