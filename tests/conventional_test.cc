#include <gtest/gtest.h>

#include "src/conventional/conventional.h"
#include "src/datagen/kg_pair.h"
#include "src/eval/metrics.h"

namespace openea::conventional {
namespace {

datagen::DatasetPair MakePair(const datagen::HeterogeneityProfile& profile) {
  datagen::SyntheticKgConfig config;
  config.num_entities = 400;
  config.avg_degree = 6.0;
  config.num_relations = 15;
  config.num_attributes = 12;
  config.vocabulary_size = 200;
  config.seed = 21;
  return GenerateDatasetPair(config, profile, 21);
}

ConventionalOptions OptionsFor(const datagen::DatasetPair& pair) {
  ConventionalOptions options;
  options.translator =
      pair.dictionary.size() > 0 ? &pair.dictionary : nullptr;
  return options;
}

TEST(ParisTest, HighPrecisionOnCrossLingualPair) {
  const auto pair = MakePair(datagen::HeterogeneityProfile::EnFr());
  const auto result = RunParis(pair.kg1, pair.kg2, OptionsFor(pair));
  const auto prf = eval::ComparePairs(result, pair.reference);
  EXPECT_GT(prf.precision, 0.8);
  EXPECT_GT(prf.recall, 0.6);
}

TEST(ParisTest, NoAttributesNoOutput) {
  // Table 8: PARIS cannot run from relation triples alone.
  const auto pair = MakePair(datagen::HeterogeneityProfile::EnFr());
  ConventionalOptions options = OptionsFor(pair);
  options.use_attributes = false;
  EXPECT_TRUE(RunParis(pair.kg1, pair.kg2, options).empty());
}

TEST(ParisTest, RelationsImproveRecall) {
  // Table 8: attribute-only PARIS keeps precision but loses recall.
  const auto pair = MakePair(datagen::HeterogeneityProfile::EnFr());
  ConventionalOptions with_rel = OptionsFor(pair);
  ConventionalOptions without_rel = with_rel;
  without_rel.use_relations = false;
  const auto full =
      eval::ComparePairs(RunParis(pair.kg1, pair.kg2, with_rel),
                         pair.reference);
  const auto attr_only =
      eval::ComparePairs(RunParis(pair.kg1, pair.kg2, without_rel),
                         pair.reference);
  EXPECT_GE(full.recall, attr_only.recall);
  EXPECT_GT(attr_only.precision, 0.7);
}

TEST(ParisTest, OneToOneOutput) {
  const auto pair = MakePair(datagen::HeterogeneityProfile::DbpYg());
  const auto result = RunParis(pair.kg1, pair.kg2, OptionsFor(pair));
  std::unordered_set<kg::EntityId> lefts, rights;
  for (const auto& p : result) {
    EXPECT_TRUE(lefts.insert(p.left).second);
    EXPECT_TRUE(rights.insert(p.right).second);
  }
}

TEST(LogMapTest, StrongOnDbpYg) {
  // D-Y keeps similar names and literals: LogMap's best case (Table 7).
  const auto pair = MakePair(datagen::HeterogeneityProfile::DbpYg());
  const auto result = RunLogMap(pair.kg1, pair.kg2, OptionsFor(pair));
  const auto prf = eval::ComparePairs(result, pair.reference);
  EXPECT_GT(prf.precision, 0.9);
  EXPECT_GT(prf.recall, 0.8);
}

TEST(LogMapTest, FailsOnWikidataStyleNames) {
  // D-W: numeric local names starve the lexical index (paper Sect. 6.3:
  // "LogMap fails to output entity alignment on the D-W datasets").
  const auto dw = MakePair(datagen::HeterogeneityProfile::DbpWd());
  const auto dy = MakePair(datagen::HeterogeneityProfile::DbpYg());
  const auto prf_dw = eval::ComparePairs(
      RunLogMap(dw.kg1, dw.kg2, OptionsFor(dw)), dw.reference);
  const auto prf_dy = eval::ComparePairs(
      RunLogMap(dy.kg1, dy.kg2, OptionsFor(dy)), dy.reference);
  EXPECT_LT(prf_dw.recall, prf_dy.recall * 0.7);
}

TEST(LogMapTest, NoAttributesNoOutput) {
  const auto pair = MakePair(datagen::HeterogeneityProfile::EnFr());
  ConventionalOptions options = OptionsFor(pair);
  options.use_attributes = false;
  EXPECT_TRUE(RunLogMap(pair.kg1, pair.kg2, options).empty());
}

TEST(LogMapTest, TranslatorHelpsCrossLingual) {
  const auto pair = MakePair(datagen::HeterogeneityProfile::EnFr());
  ConventionalOptions with_translator = OptionsFor(pair);
  ConventionalOptions without_translator = with_translator;
  without_translator.translator = nullptr;
  const auto prf_with = eval::ComparePairs(
      RunLogMap(pair.kg1, pair.kg2, with_translator), pair.reference);
  const auto prf_without = eval::ComparePairs(
      RunLogMap(pair.kg1, pair.kg2, without_translator), pair.reference);
  EXPECT_GT(prf_with.f1, prf_without.f1);
}

}  // namespace
}  // namespace openea::conventional
