#include <gtest/gtest.h>

#include "src/math/vec.h"
#include "src/text/translation.h"
#include "src/text/word_embeddings.h"

namespace openea::text {
namespace {

TEST(TranslationTest, RoundTripAndPassThrough) {
  TranslationDictionary dict;
  dict.AddPair("house", "maison");
  dict.AddPair("red", "rouge");
  EXPECT_EQ(dict.TranslateWord("house"), "maison");
  EXPECT_EQ(dict.UntranslateWord("maison"), "house");
  EXPECT_EQ(dict.TranslateWord("unknown"), "unknown");
  EXPECT_EQ(dict.TranslateText("red house today"), "rouge maison today");
  EXPECT_EQ(dict.UntranslateText("rouge maison"), "red house");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(HashedNGramVectorTest, DeterministicAndNormalized) {
  const auto a = HashedNGramVector("knowledge", 32, 7);
  const auto b = HashedNGramVector("knowledge", 32, 7);
  EXPECT_EQ(a, b);
  EXPECT_NEAR(math::L2Norm(a), 1.0f, 1e-5);
  const auto c = HashedNGramVector("knowledge", 32, 8);
  EXPECT_NE(a, c);  // Different seed, different space.
}

TEST(HashedNGramVectorTest, SimilarStringsAreCloser) {
  const auto a = HashedNGramVector("alignment", 64, 1);
  const auto b = HashedNGramVector("alignments", 64, 1);
  const auto c = HashedNGramVector("zxqwvu", 64, 1);
  EXPECT_GT(math::CosineSimilarity(a, b), math::CosineSimilarity(a, c));
  EXPECT_GT(math::CosineSimilarity(a, b), 0.5f);
}

TEST(HashedNGramVectorTest, EmptyTokenIsZero) {
  const auto v = HashedNGramVector("", 16, 1);
  EXPECT_FLOAT_EQ(math::L2Norm(v), 0.0f);
}

TEST(PseudoWordEmbeddingsTest, TranslationPairsAreNearlyIdentical) {
  TranslationDictionary dict;
  dict.AddPair("house", "maison");
  PseudoWordEmbeddings emb(32, 42, &dict, 0.05f);
  const auto en = emb.WordVector("house");
  const auto fr = emb.WordVector("maison");
  EXPECT_GT(math::CosineSimilarity(en, fr), 0.9f);
  // Without the dictionary the two words are unrelated.
  PseudoWordEmbeddings mono(32, 42);
  const auto fr_mono = mono.WordVector("maison");
  EXPECT_LT(math::CosineSimilarity(en, fr_mono), 0.5f);
}

TEST(PseudoWordEmbeddingsTest, NoiseIsDeterministic) {
  TranslationDictionary dict;
  dict.AddPair("house", "maison");
  PseudoWordEmbeddings emb(32, 42, &dict, 0.1f);
  EXPECT_EQ(emb.WordVector("maison"), emb.WordVector("maison"));
}

TEST(PseudoWordEmbeddingsTest, TextVectorAveragesWords) {
  PseudoWordEmbeddings emb(32, 42);
  const auto text = emb.TextVector("red house");
  const auto red = emb.WordVector("red");
  const auto house = emb.WordVector("house");
  // The mean should be positively correlated with both constituents.
  EXPECT_GT(math::CosineSimilarity(text, red), 0.3f);
  EXPECT_GT(math::CosineSimilarity(text, house), 0.3f);
  const auto empty = emb.TextVector("");
  EXPECT_FLOAT_EQ(math::L2Norm(empty), 0.0f);
}

}  // namespace
}  // namespace openea::text
