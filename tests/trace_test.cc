// Tests for the event-tracing layer: ring wraparound + drop accounting,
// multi-thread merge ordering, Chrome trace JSON validity (every B has a
// matching E), the dual-emit path out of telemetry::ScopedSpan, and the
// zero-perturbation pin — traced training must be bit-identical to
// untraced training at any thread count (DESIGN.md, "Observability").

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/json.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/common/telemetry.h"
#include "src/common/trace.h"
#include "src/embedding/triple_model.h"
#include "src/interaction/trainer.h"
#include "src/math/embedding_table.h"

namespace openea {
namespace {

/// Stops and drains any session on both ends so tests compose in any order
/// within the shared gtest binary.
struct TraceGuard {
  TraceGuard() {
    trace::Stop();
    trace::DrainEvents();
  }
  ~TraceGuard() {
    trace::Stop();
    trace::DrainEvents();
  }
};

/// Restores the global thread count on scope exit (shared gtest process).
struct ThreadGuard {
  int saved = Threads();
  ~ThreadGuard() { SetThreads(saved); }
};

TEST(TraceRingTest, NoEventsRecordedWhileDisabled) {
  TraceGuard guard;
  ASSERT_FALSE(trace::Enabled());
  trace::Begin("off");
  trace::Instant("off");
  trace::Counter("off", 1.0);
  trace::End();
  uint64_t dropped = 7;
  EXPECT_TRUE(trace::DrainEvents(&dropped).empty());
  EXPECT_EQ(dropped, 7u + 0u);
}

TEST(TraceRingTest, WraparoundKeepsNewestAndCountsDropped) {
  TraceGuard guard;
  telemetry::ResetForTesting();
  telemetry::SetCollectForTesting(true);
  trace::TraceConfig config;
  config.events_per_thread = 8;
  trace::Start(config);
  for (int i = 0; i < 20; ++i) {
    trace::Instant("event_" + std::to_string(i));
  }
  trace::Stop();
  uint64_t dropped = 0;
  const auto events = trace::DrainEvents(&dropped);
  EXPECT_EQ(dropped, 12u);
  ASSERT_EQ(events.size(), 8u);
  // The ring overwrites oldest-first: events 12..19 survive, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].name_view(), "event_" + std::to_string(12 + i));
  }
  const auto snap = telemetry::SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("telemetry/trace_dropped"), 12u);
  telemetry::SetCollectForTesting(false);
  telemetry::ResetForTesting();
}

TEST(TraceRingTest, EventNamesAreTruncatedNotOverrun) {
  TraceGuard guard;
  trace::Start({});
  const std::string long_name(200, 'x');
  trace::Instant(long_name);
  trace::Stop();
  const auto events = trace::DrainEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name_view(),
            long_name.substr(0, trace::TraceEvent::kMaxNameLength));
}

TEST(TraceMergeTest, MultiThreadDrainIsTimeSortedAcrossDistinctTids) {
  TraceGuard guard;
  trace::Start({});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      trace::SetCurrentThreadName("merge-test-" + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) {
        trace::Instant("tick");
        trace::Counter("count", static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  trace::Stop();
  uint64_t dropped = 0;
  const auto events = trace::DrainEvents(&dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread * 2));
  std::map<uint32_t, int> per_tid;
  for (size_t i = 0; i < events.size(); ++i) {
    ++per_tid[events[i].tid];
    if (i > 0) {
      EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
    }
  }
  EXPECT_EQ(per_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, count] : per_tid) {
    EXPECT_EQ(count, kPerThread * 2) << "tid " << tid;
  }
}

TEST(TraceExportTest, ChromeDocumentParsesAndEveryBeginHasMatchingEnd) {
  TraceGuard guard;
  const std::string path = ::testing::TempDir() + "/trace_export.json";
  trace::Start({path});
  {
    trace::ScopedEvent outer("outer");
    trace::Instant("marker");
    {
      trace::ScopedEvent inner("inner");
      trace::Counter("loss", 0.5);
    }
  }
  ASSERT_TRUE(trace::StopAndExport().ok());

  json::Value doc;
  ASSERT_TRUE(json::ReadFile(path, &doc).ok());
  EXPECT_EQ(doc.Find("displayTimeUnit")->string_value(), "ms");
  EXPECT_EQ(doc.Find("otherData")->Find("dropped_events")->number(), 0.0);
  const auto& events = doc.Find("traceEvents")->array();
  std::map<double, std::vector<std::string>> open_by_tid;
  int begins = 0, ends = 0, instants = 0, counters = 0;
  for (const json::Value& e : events) {
    const std::string ph = e.Find("ph")->string_value();
    EXPECT_EQ(e.Find("pid")->number(), 1.0);
    const double tid = e.Find("tid")->number();
    if (ph == "B") {
      ++begins;
      open_by_tid[tid].push_back(e.Find("name")->string_value());
    } else if (ph == "E") {
      ++ends;
      ASSERT_FALSE(open_by_tid[tid].empty()) << "unmatched E";
      open_by_tid[tid].pop_back();
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.Find("s")->string_value(), "t");
    } else if (ph == "C") {
      ++counters;
      EXPECT_EQ(e.Find("args")->Find("value")->number(), 0.5);
    }
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
  for (const auto& [tid, open] : open_by_tid) {
    EXPECT_TRUE(open.empty()) << "unclosed B on tid " << tid;
  }
  // Atomic write: the finished export must not leave its temp file behind.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

/// ScopedSpan dual-emits trace events even when the telemetry metric layer
/// is off — the span path machinery runs for whichever layer is enabled.
TEST(TraceDualEmitTest, ScopedSpanEmitsBeginEndWithTelemetryOff) {
  TraceGuard guard;
  ASSERT_FALSE(telemetry::Enabled());
  trace::Start({});
  {
    telemetry::ScopedSpan outer("span_outer");
    telemetry::ScopedSpan inner("span_inner");
  }
  trace::Stop();
  const auto events = trace::DrainEvents();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, trace::EventKind::kBegin);
  EXPECT_EQ(events[0].name_view(), "span_outer");
  EXPECT_EQ(events[1].kind, trace::EventKind::kBegin);
  EXPECT_EQ(events[1].name_view(), "span_inner");
  EXPECT_EQ(events[2].kind, trace::EventKind::kEnd);
  EXPECT_EQ(events[3].kind, trace::EventKind::kEnd);
  // Telemetry aggregation saw none of it.
  EXPECT_TRUE(telemetry::SnapshotSpans().empty());
}

std::vector<kg::Triple> RandomTriples(size_t count, size_t entities,
                                      size_t relations, uint64_t seed) {
  Rng rng(seed);
  std::vector<kg::Triple> triples(count);
  for (auto& t : triples) {
    t.head = static_cast<kg::EntityId>(rng.NextBounded(entities));
    t.relation = static_cast<kg::RelationId>(rng.NextBounded(relations));
    t.tail = static_cast<kg::EntityId>(rng.NextBounded(entities));
  }
  return triples;
}

std::vector<float> FlattenTable(const math::EmbeddingTable& table) {
  std::vector<float> flat;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const auto row = table.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

/// The zero-perturbation pin for tracing, mirroring the telemetry one: a
/// sharded training epoch with a trace session active must be bit-identical
/// to the untraced run, serial and parallel alike.
TEST(TraceDeterminismTest, TrainEpochBitIdenticalWithTracingOn) {
  ThreadGuard thread_guard;
  TraceGuard trace_guard;
  const auto triples = RandomTriples(600, 80, 10, 9);
  auto run = [&](int threads, bool traced) {
    if (traced) trace::Start({});
    SetThreads(threads);
    Rng model_rng(11);
    auto model = embedding::CreateTripleModel(
        embedding::TripleModelKind::kTransE, 80, 10,
        embedding::TripleModelOptions{}, model_rng);
    Rng epoch_rng(42);
    const float loss =
        interaction::TrainEpoch(*model, triples, 2, epoch_rng, nullptr,
                                interaction::EpochMode::kSharded);
    if (traced) {
      trace::Stop();
      EXPECT_FALSE(trace::DrainEvents().empty());
    }
    return std::make_pair(loss, FlattenTable(model->entity_table()));
  };
  const auto baseline = run(1, /*traced=*/false);
  for (int threads : {1, 8}) {
    const auto observed = run(threads, /*traced=*/true);
    EXPECT_EQ(observed.first, baseline.first) << threads << " threads";
    ASSERT_EQ(observed.second, baseline.second) << threads << " threads";
  }
}

}  // namespace
}  // namespace openea
