// Tests for the crash-safe checkpoint envelope (src/common/checkpoint.h):
// binary writer/reader bounds, CRC/truncation/magic/version detection,
// torn-write simulation via the fault registry, typed Rng/EmbeddingTable
// round trips, and the core determinism claim — a mini training loop saved
// mid-run and resumed reproduces the uninterrupted run bit for bit.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/checkpoint.h"
#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/math/embedding_table.h"

namespace openea {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    // Unique per test: ctest runs cases as concurrent processes, and a
    // shared directory would let one test's SetUp wipe another's files.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("openea_checkpoint_test_") + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::DisarmAll();
    std::filesystem::remove_all(dir_);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, WriterReaderRoundTrip) {
  checkpoint::BinaryWriter writer;
  writer.PutU32(0xdeadbeefu);
  writer.PutU64(0x0123456789abcdefULL);
  writer.PutI64(-42);
  writer.PutBool(true);
  writer.PutFloat(1.5f);
  writer.PutDouble(-2.25);
  writer.PutString(std::string_view("hello\0world", 11));  // Embedded NUL.
  const std::vector<float> floats = {0.0f, -1.0f, 3.14f};
  writer.PutFloats(floats);

  checkpoint::BinaryReader reader(writer.buffer());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  bool b = false;
  float f = 0.0f;
  double d = 0.0;
  std::string s;
  std::vector<float> fs;
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadBool(&b).ok());
  ASSERT_TRUE(reader.ReadFloat(&f).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  ASSERT_TRUE(reader.ReadString(&s).ok());
  ASSERT_TRUE(reader.ReadFloats(&fs).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_TRUE(b);
  EXPECT_EQ(f, 1.5f);
  EXPECT_EQ(d, -2.25);
  EXPECT_EQ(s, std::string("hello\0world", 11));
  EXPECT_EQ(fs, floats);
}

TEST_F(CheckpointTest, ReaderRejectsTruncatedInput) {
  checkpoint::BinaryWriter writer;
  writer.PutU64(7);
  // Drop the last byte: the read must fail, not crash or wrap.
  const std::string short_buf =
      writer.buffer().substr(0, writer.buffer().size() - 1);
  checkpoint::BinaryReader reader(short_buf);
  uint64_t v = 0;
  EXPECT_FALSE(reader.ReadU64(&v).ok());
}

TEST_F(CheckpointTest, Crc32MatchesKnownVector) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(checkpoint::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(checkpoint::Crc32(""), 0u);
}

TEST_F(CheckpointTest, EnvelopeRoundTrip) {
  const std::string path = Path("a.ckpt");
  ASSERT_TRUE(checkpoint::WriteFileAtomic(path, "payload bytes", 3).ok());
  auto payload = checkpoint::ReadFilePayload(path, 3);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(*payload, "payload bytes");
  // No stray temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(CheckpointTest, MissingFileIsNotFound) {
  const auto payload = checkpoint::ReadFilePayload(Path("absent.ckpt"), 1);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, VersionMismatchIsRejected) {
  const std::string path = Path("v.ckpt");
  ASSERT_TRUE(checkpoint::WriteFileAtomic(path, "x", 1).ok());
  EXPECT_FALSE(checkpoint::ReadFilePayload(path, 2).ok());
}

TEST_F(CheckpointTest, FlippedPayloadByteFailsCrc) {
  const std::string path = Path("crc.ckpt");
  ASSERT_TRUE(checkpoint::WriteFileAtomic(path, "sensitive data", 1).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8 + 4 + 8 + 3);  // Fourth payload byte.
    f.put('X');
  }
  const auto payload = checkpoint::ReadFilePayload(path, 1);
  ASSERT_FALSE(payload.ok());
  EXPECT_NE(payload.status().ToString().find("CRC"), std::string::npos)
      << payload.status().ToString();
}

TEST_F(CheckpointTest, TruncatedFileIsRejected) {
  const std::string path = Path("trunc.ckpt");
  ASSERT_TRUE(checkpoint::WriteFileAtomic(path, "0123456789abcdef", 1).ok());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 6);
  EXPECT_FALSE(checkpoint::ReadFilePayload(path, 1).ok());
}

TEST_F(CheckpointTest, GarbageMagicIsRejected) {
  const std::string path = Path("garbage.ckpt");
  std::ofstream(path, std::ios::binary) << "this is not a checkpoint file";
  const auto payload = checkpoint::ReadFilePayload(path, 1);
  ASSERT_FALSE(payload.ok());
  EXPECT_NE(payload.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, EnospcFaultSurfacesAsWriteError) {
  fault::Spec spec;
  spec.point = "checkpoint/enospc";
  fault::Arm(spec);
  const std::string path = Path("enospc.ckpt");
  EXPECT_FALSE(checkpoint::WriteFileAtomic(path, "data", 1).ok());
  EXPECT_EQ(fault::FiredCount("checkpoint/enospc"), 1u);
  // Nothing durable appeared.
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(CheckpointTest, TornWriteIsDetectedAtLoad) {
  // First write a good checkpoint, then overwrite it with a torn write
  // (half the envelope lands at the final path, bypassing the rename
  // barrier — the power-loss-without-fsync scenario).
  const std::string path = Path("torn.ckpt");
  ASSERT_TRUE(checkpoint::WriteFileAtomic(path, "generation one", 1).ok());
  fault::Spec spec;
  spec.point = "checkpoint/short_write";
  fault::Arm(spec);
  // The torn write *reports success* — the writer believes the checkpoint
  // is durable, exactly like a power loss after a lying flush. Only the
  // load-time size/CRC checks catch it.
  const Status torn = checkpoint::WriteFileAtomic(path, "generation two", 1);
  EXPECT_TRUE(torn.ok());
  // The damaged file reads as an error, never as either generation.
  EXPECT_FALSE(checkpoint::ReadFilePayload(path, 1).ok());
}

TEST_F(CheckpointTest, AfterWriteFaultKeepsFileIntact) {
  // kFail at after_write only marks the hit; the checkpoint itself must be
  // complete (this is the point kill tests use — the file is durable first).
  fault::Spec spec;
  spec.point = "checkpoint/after_write";
  fault::Arm(spec);
  const std::string path = Path("after.ckpt");
  ASSERT_TRUE(checkpoint::WriteFileAtomic(path, "durable", 1).ok());
  EXPECT_EQ(fault::FiredCount("checkpoint/after_write"), 1u);
  auto payload = checkpoint::ReadFilePayload(path, 1);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "durable");
}

TEST_F(CheckpointTest, RngRoundTripContinuesStreamExactly) {
  Rng rng(123);
  rng.NextGaussian();  // Populate the Box–Muller spare.
  checkpoint::BinaryWriter writer;
  checkpoint::PutRng(writer, rng);
  Rng restored(0);
  checkpoint::BinaryReader reader(writer.buffer());
  ASSERT_TRUE(checkpoint::ReadRng(reader, &restored).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rng.NextU64(), restored.NextU64());
    ASSERT_EQ(rng.NextGaussian(), restored.NextGaussian());
  }
}

TEST_F(CheckpointTest, EmbeddingTableRoundTripKeepsAdagradState) {
  Rng rng(7);
  math::EmbeddingTable table(6, 4, math::InitScheme::kXavier, rng);
  const std::vector<float> grad = {0.1f, -0.2f, 0.3f, -0.4f};
  table.ApplyGradient(2, grad, 0.05f);  // Non-trivial AdaGrad accumulators.

  checkpoint::BinaryWriter writer;
  checkpoint::PutEmbeddingTable(writer, table);
  math::EmbeddingTable restored;
  checkpoint::BinaryReader reader(writer.buffer());
  ASSERT_TRUE(checkpoint::ReadEmbeddingTable(reader, &restored).ok());
  ASSERT_EQ(restored.num_rows(), table.num_rows());
  ASSERT_EQ(restored.dim(), table.dim());
  ASSERT_TRUE(std::memcmp(restored.Data().data(), table.Data().data(),
                          table.Data().size() * sizeof(float)) == 0);
  ASSERT_TRUE(std::memcmp(restored.AdagradData().data(),
                          table.AdagradData().data(),
                          table.AdagradData().size() * sizeof(float)) == 0);

  // The restored optimizer must take the same next step.
  table.ApplyGradient(2, grad, 0.05f);
  restored.ApplyGradient(2, grad, 0.05f);
  EXPECT_TRUE(std::memcmp(restored.Data().data(), table.Data().data(),
                          table.Data().size() * sizeof(float)) == 0);
}

/// One deterministic pseudo-training step: a random row gets a
/// gradient drawn from the stream. Exercises exactly the state TrainState
/// carries (rng + tables + lr).
void MiniEpoch(math::EmbeddingTable& table, Rng& rng, float lr) {
  std::vector<float> grad(table.dim());
  for (int step = 0; step < 17; ++step) {
    const size_t row = rng.NextBounded(table.num_rows());
    for (float& g : grad) g = rng.NextFloat(-1.0f, 1.0f);
    table.ApplyGradient(row, grad, lr);
  }
}

TEST_F(CheckpointTest, TrainStateResumeIsBitIdentical) {
  const std::string path = Path("train_state.ckpt");
  constexpr uint64_t kEpochs = 10, kSaveAt = 4;

  // Uninterrupted run.
  Rng rng_a(99);
  math::EmbeddingTable table_a(8, 4, math::InitScheme::kUniform, rng_a);
  float lr_a = 0.1f;
  for (uint64_t e = 0; e < kEpochs; ++e) {
    MiniEpoch(table_a, rng_a, lr_a);
    lr_a *= 0.9f;
    if (e + 1 == kSaveAt) {
      checkpoint::TrainState state;
      state.epoch = e + 1;
      state.learning_rate = lr_a;
      state.rng = rng_a;
      state.tables.push_back(table_a);  // Copies values + AdaGrad state.
      ASSERT_TRUE(checkpoint::SaveTrainState(path, state).ok());
    }
  }

  // Killed-and-resumed run: restore at kSaveAt, replay the remainder.
  auto loaded = checkpoint::LoadTrainState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->epoch, kSaveAt);
  ASSERT_EQ(loaded->tables.size(), 1u);
  Rng rng_b = loaded->rng;
  math::EmbeddingTable table_b = loaded->tables[0];
  float lr_b = loaded->learning_rate;
  for (uint64_t e = loaded->epoch; e < kEpochs; ++e) {
    MiniEpoch(table_b, rng_b, lr_b);
    lr_b *= 0.9f;
  }

  ASSERT_EQ(table_b.Data().size(), table_a.Data().size());
  EXPECT_TRUE(std::memcmp(table_b.Data().data(), table_a.Data().data(),
                          table_a.Data().size() * sizeof(float)) == 0);
  EXPECT_TRUE(std::memcmp(table_b.AdagradData().data(),
                          table_a.AdagradData().data(),
                          table_a.AdagradData().size() * sizeof(float)) == 0);
  EXPECT_EQ(rng_b.NextU64(), rng_a.NextU64());
}

/// Patches `count` little-endian bytes of `value` into the file at `path`.
void PatchLe(const std::string& path, uint64_t offset, uint64_t value,
             size_t count) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good());
  char bytes[8];
  for (size_t i = 0; i < count; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(bytes, static_cast<std::streamsize>(count));
}

TEST_F(CheckpointTest, OversizedHeaderClaimIsRejectedBeforeAllocation) {
  // Regression for the u64 envelope widening: a damaged (or malicious)
  // header claiming a 5 GiB payload must fail with the explicit "oversized"
  // error — distinct from plain truncation — before any buffer is sized
  // from the claim. The payload-size field sits at file offset 12
  // (magic 8 + version 4).
  const std::string path = Path("oversized.ckpt");
  ASSERT_TRUE(checkpoint::WriteFileAtomic(path, "payload", 1).ok());
  PatchLe(path, 12, uint64_t{5} * 1024 * 1024 * 1024, 8);
  const auto payload = checkpoint::ReadFilePayload(path, 1);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(payload.status().message().find("oversized"), std::string::npos)
      << payload.status().message();
}

TEST_F(CheckpointTest, HeaderClaimAbovePayloadCapIsRejected) {
  // A claim beyond kMaxPayloadBytes itself (not merely beyond the file)
  // takes the same explicit-overflow path.
  const std::string path = Path("above_cap.ckpt");
  ASSERT_TRUE(checkpoint::WriteFileAtomic(path, "payload", 1).ok());
  PatchLe(path, 12, checkpoint::kMaxPayloadBytes + 1, 8);
  const auto payload = checkpoint::ReadFilePayload(path, 1);
  ASSERT_FALSE(payload.ok());
  EXPECT_NE(payload.status().message().find("oversized"), std::string::npos);
}

TEST_F(CheckpointTest, WriteSideOverflowIsExplicitInvalidArgument) {
  // Shrink the cap so the overflow branch is reachable without a 64 GiB
  // buffer: the write must fail loudly, naming the cap, and leave no file.
  checkpoint::internal::SetMaxPayloadForTest(16);
  const std::string path = Path("overflow.ckpt");
  const Status status =
      checkpoint::WriteFileAtomic(path, std::string(17, 'x'), 1);
  checkpoint::internal::ResetMaxPayloadForTest();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("overflow"), std::string::npos)
      << status.message();
  EXPECT_FALSE(std::filesystem::exists(path));
  // Restored cap: the same write now succeeds.
  ASSERT_TRUE(checkpoint::WriteFileAtomic(path, std::string(17, 'x'), 1).ok());
}

TEST_F(CheckpointTest, TrainStateV1WithoutSizePrefixesStillLoads) {
  // Hand-build a version-1 TrainState payload (tables back to back, no u64
  // per-table size prefix) and check the versioned loader accepts it: the
  // v2 bump must not orphan checkpoints written before the widening.
  Rng rng(99);
  math::EmbeddingTable table(6, 4, math::InitScheme::kUniform, rng);
  checkpoint::BinaryWriter writer;
  writer.PutU64(3);        // epoch
  writer.PutFloat(0.05f);  // learning rate
  checkpoint::PutRng(writer, rng);
  writer.PutU64(1);  // table count — v1: table payload follows directly.
  checkpoint::PutEmbeddingTable(writer, table);
  const std::string path = Path("v1.ckpt");
  ASSERT_TRUE(
      checkpoint::WriteFileAtomic(path, writer.buffer(), /*version=*/1).ok());

  auto loaded = checkpoint::LoadTrainState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 3u);
  EXPECT_EQ(loaded->learning_rate, 0.05f);
  ASSERT_EQ(loaded->tables.size(), 1u);
  ASSERT_EQ(loaded->tables[0].num_rows(), 6u);
  ASSERT_EQ(loaded->tables[0].dim(), 4u);
  EXPECT_TRUE(std::memcmp(loaded->tables[0].Data().data(),
                          table.Data().data(),
                          table.Data().size() * sizeof(float)) == 0);
  // The restored RNG continues the same stream (compare via serialization:
  // Rng has no operator==).
  checkpoint::BinaryWriter a, b;
  checkpoint::PutRng(a, rng);
  checkpoint::PutRng(b, loaded->rng);
  EXPECT_EQ(a.buffer(), b.buffer());
}

TEST_F(CheckpointTest, TrainStateV2TableExtentMismatchIsRejected) {
  // Hand-build a version-2 payload whose first table declares a 1 TiB
  // extent (a wrapped or corrupted size prefix): the loader must reject the
  // claim against the remaining payload bytes instead of sizing anything
  // from it. Built through WriteFileAtomic so the envelope CRC is valid —
  // the extent check itself is what must fire.
  Rng rng(7);
  math::EmbeddingTable table(5, 4, math::InitScheme::kUniform, rng);
  checkpoint::BinaryWriter writer;
  writer.PutU64(2);       // epoch
  writer.PutFloat(0.1f);  // learning rate
  checkpoint::PutRng(writer, rng);
  writer.PutU64(1);                // table count
  writer.PutU64(uint64_t{1} << 40);  // bogus table_bytes claim
  checkpoint::PutEmbeddingTable(writer, table);
  const std::string path = Path("v2_extent.ckpt");
  ASSERT_TRUE(
      checkpoint::WriteFileAtomic(path, writer.buffer(), /*version=*/2).ok());

  const auto loaded = checkpoint::LoadTrainState(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("remain"), std::string::npos)
      << loaded.status().message();
}

TEST_F(CheckpointTest, TrainStateV2WrongExtentDeclarationIsRejected) {
  // A plausible-but-wrong size prefix (fits in the payload, disagrees with
  // what parsing actually consumes) trips the post-parse extent check.
  Rng rng(8);
  math::EmbeddingTable table(5, 4, math::InitScheme::kUniform, rng);
  const uint64_t floats = uint64_t{table.num_rows()} * table.dim();
  const uint64_t real_bytes = 8 + 8 + 2 * (8 + floats * 4);
  checkpoint::BinaryWriter writer;
  writer.PutU64(2);
  writer.PutFloat(0.1f);
  checkpoint::PutRng(writer, rng);
  writer.PutU64(1);
  writer.PutU64(real_bytes - 4);  // Off by one float.
  checkpoint::PutEmbeddingTable(writer, table);
  writer.PutU32(0);  // Slack so the wrong claim still fits the payload.
  const std::string path = Path("v2_wrong_extent.ckpt");
  ASSERT_TRUE(
      checkpoint::WriteFileAtomic(path, writer.buffer(), /*version=*/2).ok());

  const auto loaded = checkpoint::LoadTrainState(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("extent mismatch"),
            std::string::npos)
      << loaded.status().message();
}

}  // namespace
}  // namespace openea
