// Out-of-core sharded-table suite (ctest label: sharded; the sanitize
// presets run it too). Pins, in order:
//  * the on-disk format round trip (values + AdaGrad, padding, accessors,
//    content fingerprint) and the writer's row-count/shape contract;
//  * damage detection — a corrupted header fails Open, a corrupted or torn
//    bank (shard/short_write fault) passes Open but fails MapBank/ToMatrix
//    with a CRC error, shard/enospc surfaces as a write Status;
//  * the residency budget (LRU eviction, pin exemption) and prefetch;
//  * *bit*-identity of ShardedTopK with StreamingTopK — every metric, 1 and
//    8 threads, bank sizes that split rows unevenly — and of the exact and
//    IVF candidate sources built via IndexSharded against their in-RAM
//    Index builds;
//  * eval::EvaluateRankingSharded == eval::EvaluateRanking, bitwise.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "src/align/candidate_source.h"
#include "src/align/similarity.h"
#include "src/align/topk.h"
#include "src/common/fault.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/core/task.h"
#include "src/eval/metrics.h"
#include "src/math/embedding_table.h"
#include "src/math/matrix.h"
#include "src/math/sharded_table.h"

namespace openea {
namespace {

class ShardedTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("openea_sharded_table_") + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::DisarmAll();
    std::filesystem::remove_all(dir_);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

math::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  math::Matrix m(rows, cols);
  m.FillUniform(rng, 1.0f);
  return m;
}

/// Restores the serial default when a test body returns or fails.
struct ThreadGuard {
  explicit ThreadGuard(int threads) { SetThreads(threads); }
  ~ThreadGuard() { SetThreads(1); }
};

/// Flips one byte of the file at `path`.
void CorruptByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0xFF);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

// ---------------------------------------------------------------------------
// Format round trip.
// ---------------------------------------------------------------------------

TEST_F(ShardedTableTest, RoundTripValuesAndAdagrad) {
  const size_t rows = 100, dim = 7, rows_per_bank = 16;
  std::vector<float> values(rows * dim), adagrad(rows * dim);
  Rng rng(42);
  for (float& v : values) v = rng.NextFloat(-1.0f, 1.0f);
  for (float& v : adagrad) v = rng.NextFloat(0.0f, 1.0f);
  const auto table =
      math::EmbeddingTable::FromParts(rows, dim, values, adagrad);

  const std::string path = Path("table.shard");
  ASSERT_TRUE(math::WriteShardedTable(path, table, rows_per_bank).ok());
  EXPECT_TRUE(math::IsShardedTableFile(path));

  auto opened = math::ShardedEmbeddingTable::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const auto& sharded = **opened;
  EXPECT_EQ(sharded.num_rows(), rows);
  EXPECT_EQ(sharded.dim(), dim);
  EXPECT_EQ(sharded.row_stride(), 16u);  // 7 rounded up to 16 floats.
  EXPECT_EQ(sharded.rows_per_bank(), rows_per_bank);
  EXPECT_EQ(sharded.num_banks(), 7u);  // ceil(100 / 16).
  EXPECT_TRUE(sharded.has_adagrad());
  EXPECT_NE(sharded.ContentFingerprint(), 0u);

  auto round = sharded.ToEmbeddingTable();
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round->num_rows(), rows);
  ASSERT_EQ(round->dim(), dim);
  EXPECT_TRUE(std::equal(round->Data().begin(), round->Data().end(),
                         values.begin()));
  EXPECT_TRUE(std::equal(round->AdagradData().begin(),
                         round->AdagradData().end(), adagrad.begin()));

  // Row reads and mapped-bank row pointers agree with the source data.
  std::vector<float> row(dim);
  ASSERT_TRUE(sharded.ReadRow(57, row).ok());
  for (size_t d = 0; d < dim; ++d) EXPECT_EQ(row[d], values[57 * dim + d]);
  auto lease = sharded.MapBank(sharded.BankOfRow(57));
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(lease->stride(), 16u);
  const float* mapped = lease->RowValues(57);
  for (size_t d = 0; d < dim; ++d) EXPECT_EQ(mapped[d], values[57 * dim + d]);
  // Padding floats must be zero (the kernel may read through the stride).
  for (size_t d = dim; d < lease->stride(); ++d) EXPECT_EQ(mapped[d], 0.0f);
}

TEST_F(ShardedTableTest, FingerprintTracksContent) {
  const math::Matrix a = RandomMatrix(30, 8, 1);
  math::Matrix b = RandomMatrix(30, 8, 1);
  b.Row(17)[3] += 1.0f;
  ASSERT_TRUE(math::WriteShardedTable(Path("a.shard"), a).ok());
  ASSERT_TRUE(math::WriteShardedTable(Path("a2.shard"), a).ok());
  ASSERT_TRUE(math::WriteShardedTable(Path("b.shard"), b).ok());
  const auto fp = [&](const std::string& p) {
    auto t = math::ShardedEmbeddingTable::Open(p);
    EXPECT_TRUE(t.ok());
    return (*t)->ContentFingerprint();
  };
  EXPECT_EQ(fp(Path("a.shard")), fp(Path("a2.shard")));
  EXPECT_NE(fp(Path("a.shard")), fp(Path("b.shard")));
}

TEST_F(ShardedTableTest, WriterEnforcesRowCountAndShape) {
  math::ShardedTableOptions options;
  options.rows_per_bank = 4;
  auto writer =
      math::ShardedTableWriter::Create(Path("w.shard"), 3, 5, options);
  ASSERT_TRUE(writer.ok());
  const std::vector<float> row(5, 1.0f), wrong(4, 1.0f);
  EXPECT_FALSE((*writer)->AppendRow(wrong).ok());
  ASSERT_TRUE((*writer)->AppendRow(row).ok());
  EXPECT_FALSE((*writer)->Finalize().ok());  // 1 of 3 rows appended.
  ASSERT_TRUE((*writer)->AppendRow(row).ok());
  ASSERT_TRUE((*writer)->AppendRow(row).ok());
  EXPECT_TRUE((*writer)->Finalize().ok());
  EXPECT_TRUE(math::IsShardedTableFile(Path("w.shard")));
}

TEST_F(ShardedTableTest, NotAShardFile) {
  const std::string path = Path("not_a_shard");
  std::ofstream(path) << "hello";
  EXPECT_FALSE(math::IsShardedTableFile(path));
  EXPECT_FALSE(math::ShardedEmbeddingTable::Open(path).ok());
  EXPECT_FALSE(math::IsShardedTableFile(Path("missing")));
}

// ---------------------------------------------------------------------------
// Damage detection.
// ---------------------------------------------------------------------------

TEST_F(ShardedTableTest, CorruptedHeaderFailsOpen) {
  const std::string path = Path("h.shard");
  ASSERT_TRUE(math::WriteShardedTable(path, RandomMatrix(20, 6, 2)).ok());
  CorruptByteAt(path, 16);  // num_rows field.
  EXPECT_FALSE(math::ShardedEmbeddingTable::Open(path).ok());
}

TEST_F(ShardedTableTest, CorruptedBankFailsMapNotOpen) {
  const std::string path = Path("b.shard");
  math::ShardedTableOptions options;
  options.rows_per_bank = 8;
  ASSERT_TRUE(
      math::WriteShardedTable(path, RandomMatrix(24, 6, 3), options).ok());
  // Flip a payload byte in the last bank (banks are 64-aligned at the tail
  // of the file, so the last few bytes are bank payload).
  CorruptByteAt(path, std::filesystem::file_size(path) - 70);

  auto opened = math::ShardedEmbeddingTable::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE((*opened)->MapBank(0).ok());  // Undamaged bank still maps.
  const auto last = (*opened)->MapBank((*opened)->num_banks() - 1);
  ASSERT_FALSE(last.ok());
  EXPECT_EQ(last.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(last.status().ToString().find("CRC"), std::string::npos);
  EXPECT_FALSE((*opened)->ToMatrix().ok());

  // Opting out of verification maps the damaged bank (CRC skipped).
  math::ShardedEmbeddingTable::OpenOptions no_verify;
  no_verify.verify_crc = false;
  auto unchecked = math::ShardedEmbeddingTable::Open(path, no_verify);
  ASSERT_TRUE(unchecked.ok());
  EXPECT_TRUE((*unchecked)->MapBank((*unchecked)->num_banks() - 1).ok());
}

TEST_F(ShardedTableTest, ShortWriteFaultTearsOneBankCaughtByCrc) {
  // shard/short_write models power loss without fsync: the writer "succeeds"
  // but half of one bank's payload never reached the disk. Open (header +
  // directory intact) succeeds; mapping the torn bank fails its CRC.
  fault::Spec spec;
  spec.point = "shard/short_write";
  spec.hit = 2;  // Tear the second bank.
  fault::Arm(spec);
  const std::string path = Path("torn.shard");
  math::ShardedTableOptions options;
  options.rows_per_bank = 8;
  ASSERT_TRUE(
      math::WriteShardedTable(path, RandomMatrix(32, 6, 4), options).ok());
  fault::DisarmAll();

  auto opened = math::ShardedEmbeddingTable::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE((*opened)->MapBank(0).ok());
  const auto torn = (*opened)->MapBank(1);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(torn.status().ToString().find("torn"), std::string::npos);
  EXPECT_FALSE((*opened)->ToMatrix().ok());
}

TEST_F(ShardedTableTest, EnospcFaultFailsWriteWithoutFinalFile) {
  fault::Spec spec;
  spec.point = "shard/enospc";
  spec.hit = 1;
  fault::Arm(spec);
  const std::string path = Path("full.shard");
  EXPECT_FALSE(math::WriteShardedTable(path, RandomMatrix(16, 4, 5)).ok());
  fault::DisarmAll();
  EXPECT_FALSE(std::filesystem::exists(path));  // Temp+rename never renamed.
}

// ---------------------------------------------------------------------------
// Residency budget and prefetch.
// ---------------------------------------------------------------------------

TEST_F(ShardedTableTest, ResidencyBudgetEvictsLruKeepsPinned) {
  const std::string path = Path("lru.shard");
  math::ShardedTableOptions options;
  options.rows_per_bank = 8;
  const math::Matrix source = RandomMatrix(64, 6, 6);
  ASSERT_TRUE(math::WriteShardedTable(path, source, options).ok());

  math::ShardedEmbeddingTable::OpenOptions open_options;
  open_options.max_resident_banks = 2;
  auto opened = math::ShardedEmbeddingTable::Open(path, open_options);
  ASSERT_TRUE(opened.ok());
  const auto& table = **opened;
  ASSERT_EQ(table.num_banks(), 8u);

  // Sequential scan with dropped leases: the budget holds throughout.
  for (size_t b = 0; b < table.num_banks(); ++b) {
    auto lease = table.MapBank(b);
    ASSERT_TRUE(lease.ok());
    EXPECT_EQ(lease->first_row(), b * 8);
    EXPECT_LE(table.resident_banks(), 2u);
  }
  EXPECT_LE(table.resident_banks(), 2u);

  // Pinned banks are never evicted: three live leases exceed the budget
  // (soft while pinned), and their pointers stay valid.
  {
    auto l0 = table.MapBank(0);
    auto l1 = table.MapBank(1);
    auto l2 = table.MapBank(2);
    ASSERT_TRUE(l0.ok() && l1.ok() && l2.ok());
    EXPECT_GE(table.resident_banks(), 3u);
    EXPECT_EQ(l0->values()[0], source.Row(0)[0]);
  }
  table.ReleaseUnpinned();
  EXPECT_EQ(table.resident_banks(), 0u);
  EXPECT_EQ(table.resident_bytes(), 0u);
}

TEST_F(ShardedTableTest, PrefetchWarmsBanksValuesUnchanged) {
  const std::string path = Path("pf.shard");
  math::ShardedTableOptions options;
  options.rows_per_bank = 4;
  const math::Matrix source = RandomMatrix(20, 6, 7);
  ASSERT_TRUE(math::WriteShardedTable(path, source, options).ok());
  auto opened = math::ShardedEmbeddingTable::Open(path);
  ASSERT_TRUE(opened.ok());
  const auto& table = **opened;
  for (size_t b = 0; b < table.num_banks(); ++b) table.Prefetch(b);
  table.Prefetch(1000);  // Out of range: ignored, not fatal.
  auto matrix = table.ToMatrix();
  ASSERT_TRUE(matrix.ok());
  EXPECT_TRUE(std::equal(matrix->Data().begin(), matrix->Data().end(),
                         source.Data().begin()));
}

// ---------------------------------------------------------------------------
// ShardedTopK bit-identity.
// ---------------------------------------------------------------------------

const align::DistanceMetric kAllMetrics[] = {
    align::DistanceMetric::kCosine, align::DistanceMetric::kEuclidean,
    align::DistanceMetric::kManhattan, align::DistanceMetric::kInner};

void ExpectSameTopK(const align::TopKResult& a, const align::TopKResult& b,
                    const std::string& label) {
  ASSERT_EQ(a.rows, b.rows) << label;
  ASSERT_EQ(a.k, b.k) << label;
  EXPECT_EQ(a.nan_cells, b.nan_cells) << label;
  for (size_t i = 0; i < a.rows; ++i) {
    const auto ra = a.Row(i);
    const auto rb = b.Row(i);
    for (size_t t = 0; t < a.k; ++t) {
      EXPECT_EQ(ra[t].value, rb[t].value) << label << " row=" << i;
      EXPECT_EQ(ra[t].index, rb[t].index) << label << " row=" << i;
    }
  }
  ASSERT_EQ(a.true_sim.size(), b.true_sim.size()) << label;
  for (size_t i = 0; i < a.true_sim.size(); ++i) {
    if (std::isnan(a.true_sim[i])) {
      EXPECT_TRUE(std::isnan(b.true_sim[i])) << label << " row=" << i;
    } else {
      EXPECT_EQ(a.true_sim[i], b.true_sim[i]) << label << " row=" << i;
    }
    EXPECT_EQ(a.num_greater[i], b.num_greater[i]) << label << " row=" << i;
    EXPECT_EQ(a.num_ties[i], b.num_ties[i]) << label << " row=" << i;
  }
}

TEST_F(ShardedTableTest, ShardedTopKBitIdenticalToStreaming) {
  const size_t rows = 37, cols = 53, dim = 16, k = 7;
  const math::Matrix src = RandomMatrix(rows, dim, 11);
  const math::Matrix tgt = RandomMatrix(cols, dim, 22);
  for (const size_t rows_per_bank : {7u, 16u, 64u}) {  // 64 = single bank.
    math::ShardedTableOptions options;
    options.rows_per_bank = rows_per_bank;
    const std::string path =
        Path("tgt_" + std::to_string(rows_per_bank) + ".shard");
    ASSERT_TRUE(math::WriteShardedTable(path, tgt, options).ok());
    auto sharded = math::ShardedEmbeddingTable::Open(path);
    ASSERT_TRUE(sharded.ok());
    for (const align::DistanceMetric metric : kAllMetrics) {
      for (int threads : {1, 8}) {
        ThreadGuard guard(threads);
        align::TopKOptions topk_options;
        topk_options.k = k;
        topk_options.metric = metric;
        topk_options.true_cols.resize(rows);
        for (size_t i = 0; i < rows; ++i) {
          topk_options.true_cols[i] = static_cast<int>(i % cols);
        }
        const align::TopKResult streamed =
            align::StreamingTopK(src, tgt, topk_options);
        const align::TopKResult banked =
            align::ShardedTopK(src, **sharded, topk_options);
        ExpectSameTopK(streamed, banked,
                       std::string(align::DistanceMetricName(metric)) +
                           " bank=" + std::to_string(rows_per_bank) +
                           " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST_F(ShardedTableTest, ShardedTopKSkipsNanCellsLikeStreaming) {
  const size_t rows = 9, cols = 21, dim = 8;
  const math::Matrix src = RandomMatrix(rows, dim, 33);
  math::Matrix tgt = RandomMatrix(cols, dim, 44);
  tgt.Row(5)[0] = std::numeric_limits<float>::quiet_NaN();
  tgt.Row(13)[3] = std::numeric_limits<float>::quiet_NaN();
  math::ShardedTableOptions options;
  options.rows_per_bank = 6;
  const std::string path = Path("nan.shard");
  ASSERT_TRUE(math::WriteShardedTable(path, tgt, options).ok());
  auto sharded = math::ShardedEmbeddingTable::Open(path);
  ASSERT_TRUE(sharded.ok());
  align::TopKOptions topk_options;
  topk_options.k = 5;
  topk_options.metric = align::DistanceMetric::kInner;
  topk_options.true_cols.assign(rows, 5);  // NaN true column for every row.
  const align::TopKResult streamed =
      align::StreamingTopK(src, tgt, topk_options);
  const align::TopKResult banked =
      align::ShardedTopK(src, **sharded, topk_options);
  EXPECT_GT(banked.nan_cells, 0u);
  ExpectSameTopK(streamed, banked, "nan");
}

// ---------------------------------------------------------------------------
// Candidate sources built out-of-core.
// ---------------------------------------------------------------------------

TEST_F(ShardedTableTest, ExactSourceShardedMatchesInRam) {
  const math::Matrix queries = RandomMatrix(19, 12, 1);
  const math::Matrix targets = RandomMatrix(47, 12, 2);
  const std::string path = Path("exact.shard");
  math::ShardedTableOptions options;
  options.rows_per_bank = 16;
  ASSERT_TRUE(math::WriteShardedTable(path, targets, options).ok());

  align::CandidateSourceConfig config;
  config.kind = align::CandidateSourceKind::kExact;
  auto in_ram = align::CreateCandidateSourceOrDie(config);
  ASSERT_TRUE(in_ram->Index(targets).ok());
  auto out_of_core = align::CreateCandidateSourceOrDie(config);
  ASSERT_TRUE(out_of_core->IndexShardedFile(path).ok());
  EXPECT_EQ(out_of_core->num_targets(), targets.rows());
  EXPECT_EQ(out_of_core->dim(), targets.cols());

  for (int threads : {1, 8}) {
    ThreadGuard guard(threads);
    ExpectSameTopK(in_ram->TopK(queries, 10), out_of_core->TopK(queries, 10),
                   "exact threads=" + std::to_string(threads));
  }
}

TEST_F(ShardedTableTest, ExactSourceShardedRejectsCsls) {
  align::CandidateSourceConfig config;
  config.kind = align::CandidateSourceKind::kExact;
  config.csls = true;
  auto source = align::CreateCandidateSourceOrDie(config);
  const std::string path = Path("csls.shard");
  ASSERT_TRUE(math::WriteShardedTable(path, RandomMatrix(8, 4, 3)).ok());
  const Status status = source->IndexShardedFile(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("csls"), std::string::npos);
}

TEST_F(ShardedTableTest, AnnIvfShardedBuildMatchesInRam) {
  const math::Matrix queries = RandomMatrix(23, 16, 5);
  const math::Matrix targets = RandomMatrix(300, 16, 6);
  const std::string path = Path("ivf.shard");
  math::ShardedTableOptions options;
  options.rows_per_bank = 64;
  ASSERT_TRUE(math::WriteShardedTable(path, targets, options).ok());

  align::CandidateSourceConfig config;
  config.kind = align::CandidateSourceKind::kAnnIvf;
  config.ivf_nprobe = 4;
  auto in_ram = align::CreateCandidateSourceOrDie(config);
  ASSERT_TRUE(in_ram->Index(targets).ok());
  auto out_of_core = align::CreateCandidateSourceOrDie(config);
  ASSERT_TRUE(out_of_core->IndexShardedFile(path).ok());
  EXPECT_EQ(out_of_core->num_targets(), targets.rows());
  EXPECT_EQ(out_of_core->dim(), targets.cols());

  // Same seeds, same Lloyd updates (streamed in global row order), same
  // probe routing — the sharded build must return the same candidates.
  for (int threads : {1, 8}) {
    ThreadGuard guard(threads);
    const auto a = in_ram->TopK(queries, 10);
    const auto b = out_of_core->TopK(queries, 10);
    ASSERT_EQ(a.rows, b.rows);
    for (size_t i = 0; i < a.rows; ++i) {
      const auto ra = a.Row(i);
      const auto rb = b.Row(i);
      for (size_t t = 0; t < a.k; ++t) {
        EXPECT_EQ(ra[t].value, rb[t].value) << "row=" << i << " t=" << t;
        EXPECT_EQ(ra[t].index, rb[t].index) << "row=" << i << " t=" << t;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded evaluation.
// ---------------------------------------------------------------------------

TEST_F(ShardedTableTest, EvaluateRankingShardedBitIdentical) {
  const size_t n = 80, dim = 16;
  core::AlignmentModel model;
  model.emb1 = RandomMatrix(n, dim, 71);
  model.emb2 = RandomMatrix(n, dim, 72);
  kg::Alignment pairs;
  for (size_t i = 0; i < n; ++i) {
    pairs.push_back({static_cast<kg::EntityId>(i),
                     static_cast<kg::EntityId>((i * 7 + 3) % n)});
  }
  const eval::RankingMetrics in_ram =
      eval::EvaluateRanking(model, pairs, align::DistanceMetric::kCosine);
  for (int threads : {1, 8}) {
    ThreadGuard guard(threads);
    const eval::RankingMetrics sharded = eval::EvaluateRankingSharded(
        model, pairs, align::DistanceMetric::kCosine,
        Path("eval_t" + std::to_string(threads) + ".shard"),
        /*rows_per_bank=*/16, /*max_resident_banks=*/2);
    EXPECT_EQ(sharded.hits1, in_ram.hits1) << threads;
    EXPECT_EQ(sharded.hits5, in_ram.hits5) << threads;
    EXPECT_EQ(sharded.mr, in_ram.mr) << threads;
    EXPECT_EQ(sharded.mrr, in_ram.mrr) << threads;
  }
  // The shard file is left behind as a serve-loadable artifact.
  EXPECT_TRUE(math::IsShardedTableFile(Path("eval_t1.shard")));
}

}  // namespace
}  // namespace openea
