#include <cmath>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/kg/alignment_util.h"
#include "src/kg/graph_stats.h"
#include "src/kg/knowledge_graph.h"
#include "src/kg/vocab.h"

namespace openea::kg {
namespace {

KnowledgeGraph MakeTriangleGraph() {
  KnowledgeGraph g;
  const EntityId a = g.AddEntity("a");
  const EntityId b = g.AddEntity("b");
  const EntityId c = g.AddEntity("c");
  const EntityId d = g.AddEntity("d");  // Isolated.
  (void)d;
  const RelationId r = g.AddRelation("r");
  g.AddTriple(a, r, b);
  g.AddTriple(b, r, c);
  g.AddTriple(a, r, c);
  g.BuildIndex();
  return g;
}

TEST(VocabTest, GetOrAddIsIdempotent) {
  Vocab v;
  EXPECT_EQ(v.GetOrAdd("x"), 0);
  EXPECT_EQ(v.GetOrAdd("y"), 1);
  EXPECT_EQ(v.GetOrAdd("x"), 0);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.Name(1), "y");
  EXPECT_EQ(v.Find("z"), kInvalidId);
}

TEST(KnowledgeGraphTest, CountsAndDegrees) {
  KnowledgeGraph g = MakeTriangleGraph();
  EXPECT_EQ(g.NumEntities(), 4u);
  EXPECT_EQ(g.NumRelations(), 1u);
  EXPECT_EQ(g.NumTriples(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(3), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 6.0 / 4.0);
}

TEST(KnowledgeGraphTest, NeighborsDirectionality) {
  KnowledgeGraph g = MakeTriangleGraph();
  // Entity b: outgoing to c, incoming from a.
  bool saw_out = false, saw_in = false;
  for (const NeighborEdge& e : g.Neighbors(1)) {
    if (e.outgoing && e.neighbor == 2) saw_out = true;
    if (!e.outgoing && e.neighbor == 0) saw_in = true;
  }
  EXPECT_TRUE(saw_out);
  EXPECT_TRUE(saw_in);
}

TEST(KnowledgeGraphTest, HasTriple) {
  KnowledgeGraph g = MakeTriangleGraph();
  EXPECT_TRUE(g.HasTriple({0, 0, 1}));
  EXPECT_FALSE(g.HasTriple({1, 0, 0}));  // Direction matters.
}

TEST(KnowledgeGraphTest, AttributesAndDescriptions) {
  KnowledgeGraph g;
  const EntityId e = g.AddEntity("e");
  const AttributeId a = g.AddAttribute("population");
  const LiteralId v = g.AddLiteral("12345");
  g.AddAttributeTriple(e, a, v);
  g.SetDescription(e, "a small town");
  g.BuildIndex();
  ASSERT_EQ(g.EntityAttributes(e).size(), 1u);
  EXPECT_EQ(g.EntityAttributes(e)[0].attribute, a);
  EXPECT_EQ(g.Description(e), "a small town");
  EXPECT_EQ(g.NumAttributeTriples(), 1u);
}

TEST(KnowledgeGraphTest, InducedSubgraphKeepsInternalTriples) {
  KnowledgeGraph g = MakeTriangleGraph();
  std::unordered_set<EntityId> kept = {0, 1};  // a, b.
  std::vector<EntityId> remap;
  KnowledgeGraph sub = g.InducedSubgraph(kept, &remap);
  EXPECT_EQ(sub.NumEntities(), 2u);
  EXPECT_EQ(sub.NumTriples(), 1u);  // Only a->b survives.
  EXPECT_EQ(remap[2], kInvalidId);
  EXPECT_NE(remap[0], kInvalidId);
  // Names preserved.
  EXPECT_EQ(sub.entities().Name(remap[0]), "a");
}

TEST(GraphStatsTest, DegreeDistributionSumsToOne) {
  KnowledgeGraph g = MakeTriangleGraph();
  const DegreeDistribution dist = ComputeDegreeDistribution(g);
  double sum = 0;
  for (double p : dist.proportion) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(dist.At(2), 0.75);  // a, b, c all have degree 2.
  EXPECT_DOUBLE_EQ(dist.At(0), 0.25);  // d isolated.
  EXPECT_DOUBLE_EQ(dist.At(99), 0.0);
}

TEST(GraphStatsTest, JsDivergenceProperties) {
  DegreeDistribution p, q;
  p.proportion = {0.5, 0.5};
  q.proportion = {0.5, 0.5};
  EXPECT_NEAR(JensenShannonDivergence(p, q), 0.0, 1e-12);
  DegreeDistribution r;
  r.proportion = {0.0, 0.0, 1.0};
  const double js = JensenShannonDivergence(p, r);
  EXPECT_GT(js, 0.0);
  EXPECT_LE(js, std::log(2.0) + 1e-12);
  // Symmetry.
  EXPECT_NEAR(js, JensenShannonDivergence(r, p), 1e-12);
}

TEST(GraphStatsTest, IsolatedRatio) {
  KnowledgeGraph g = MakeTriangleGraph();
  EXPECT_DOUBLE_EQ(IsolatedEntityRatio(g), 0.25);
}

TEST(GraphStatsTest, ClusteringCoefficientOfTriangle) {
  KnowledgeGraph g = MakeTriangleGraph();
  // a, b, c form a triangle: each has clustering 1; d contributes 0.
  EXPECT_NEAR(AverageClusteringCoefficient(g), 0.75, 1e-12);
}

TEST(GraphStatsTest, PageRankSumsToOneAndRanksHubs) {
  KnowledgeGraph g;
  const EntityId hub = g.AddEntity("hub");
  const RelationId r = g.AddRelation("r");
  for (int i = 0; i < 10; ++i) {
    const EntityId leaf = g.AddEntity("leaf" + std::to_string(i));
    g.AddTriple(leaf, r, hub);
  }
  g.BuildIndex();
  const auto pr = PageRank(g);
  double sum = 0;
  for (double v : pr) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  for (size_t i = 1; i < pr.size(); ++i) EXPECT_GT(pr[hub], pr[i]);
}

TEST(AlignmentUtilTest, RemapDropsDeletedEndpoints) {
  Alignment a = {{0, 0}, {1, 1}, {2, 2}};
  std::vector<EntityId> left_map = {5, kInvalidId, 7};
  std::vector<EntityId> right_map = {9, 8, kInvalidId};
  const Alignment out = RemapAlignment(a, left_map, right_map);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].left, 5);
  EXPECT_EQ(out[0].right, 9);
}

TEST(AlignmentUtilTest, FilterKeepsOnlyFullyPresentPairs) {
  Alignment a = {{0, 0}, {1, 1}, {2, 2}};
  std::unordered_set<EntityId> left = {0, 1};
  std::unordered_set<EntityId> right = {1, 2};
  const Alignment out = FilterAlignment(a, left, right);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].left, 1);
}

}  // namespace
}  // namespace openea::kg
