// Property-style tests: invariants that must hold across sweeps of random
// inputs, sizes, seeds, metrics, and modes — complementing the example-
// based unit tests.

#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "src/align/inference.h"
#include "src/align/similarity.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/datagen/synthetic_kg.h"
#include "src/eval/folds.h"
#include "src/eval/metrics.h"
#include "src/interaction/unified_kg.h"
#include "src/kg/graph_stats.h"
#include "src/math/matrix.h"
#include "src/math/vec.h"
#include "src/text/translation.h"

namespace openea {
namespace {

math::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  math::Matrix m(rows, cols);
  m.FillUniform(rng, 1.0f);
  return m;
}

double MatchWeight(const math::Matrix& sim, const std::vector<int>& match) {
  double total = 0.0;
  for (size_t i = 0; i < match.size(); ++i) {
    if (match[i] >= 0) total += sim.At(i, static_cast<size_t>(match[i]));
  }
  return total;
}

// ---------------------------------------------------------------------------
// Matching invariants across random similarity matrices.
// ---------------------------------------------------------------------------

class MatchingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingPropertyTest, KuhnMunkresDominatesEveryOneToOneMatching) {
  const auto sim = RandomMatrix(12, 12, GetParam());
  const double km = MatchWeight(sim, align::KuhnMunkres(sim));
  const double sm = MatchWeight(sim, align::StableMarriage(sim));
  EXPECT_GE(km, sm - 1e-5);
}

TEST_P(MatchingPropertyTest, GreedyDominatesAnyMatchingPerRow) {
  // Greedy picks each row's max, so its (conflicting) total weight is an
  // upper bound on any 1-to-1 matching's weight.
  const auto sim = RandomMatrix(10, 10, GetParam());
  const double greedy = MatchWeight(sim, align::GreedyMatch(sim));
  const double km = MatchWeight(sim, align::KuhnMunkres(sim));
  EXPECT_GE(greedy, km - 1e-5);
}

TEST_P(MatchingPropertyTest, StableMarriageIsOneToOne) {
  const auto sim = RandomMatrix(15, 9, GetParam());  // Rectangular.
  const auto match = align::StableMarriage(sim);
  std::vector<bool> used(9, false);
  size_t matched = 0;
  for (int j : match) {
    if (j < 0) continue;
    EXPECT_FALSE(used[j]);
    used[j] = true;
    ++matched;
  }
  EXPECT_EQ(matched, 9u);  // All columns get matched (more rows than cols).
}

TEST_P(MatchingPropertyTest, CslsPreservesMatrixShape) {
  math::Matrix sim = RandomMatrix(8, 14, GetParam());
  const auto before_rows = sim.rows();
  align::ApplyCsls(sim, 3);
  EXPECT_EQ(sim.rows(), before_rows);
  for (float v : sim.Data()) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Ranking-metric invariants across random models.
// ---------------------------------------------------------------------------

class RankingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RankingPropertyTest, MetricOrderingsHold) {
  core::AlignmentModel model;
  model.emb1 = RandomMatrix(30, 8, GetParam());
  model.emb2 = RandomMatrix(30, 8, GetParam() ^ 0xABC);
  kg::Alignment pairs;
  for (int i = 0; i < 30; ++i) pairs.push_back({i, i});
  for (const auto metric :
       {align::DistanceMetric::kCosine, align::DistanceMetric::kEuclidean,
        align::DistanceMetric::kManhattan, align::DistanceMetric::kInner}) {
    const auto m = eval::EvaluateRanking(model, pairs, metric);
    EXPECT_LE(m.hits1, m.hits5);
    EXPECT_GE(m.mrr, m.hits1);
    EXPECT_LE(m.mrr, 1.0);
    EXPECT_GE(m.mr, 1.0);
    EXPECT_LE(m.mr, 30.0);
  }
}

TEST_P(RankingPropertyTest, CslsNeverBreaksPerfectModel) {
  core::AlignmentModel model;
  model.emb1 = RandomMatrix(20, 8, GetParam());
  model.emb2 = model.emb1;
  kg::Alignment pairs;
  for (int i = 0; i < 20; ++i) pairs.push_back({i, i});
  const auto m = eval::EvaluateRanking(model, pairs,
                                       align::DistanceMetric::kCosine,
                                       /*csls=*/true);
  EXPECT_DOUBLE_EQ(m.hits1, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankingPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Fold protocol invariants across fold counts.
// ---------------------------------------------------------------------------

class FoldPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FoldPropertyTest, PartitionsAreExactAndDisjoint) {
  kg::Alignment ref;
  for (int i = 0; i < 500; ++i) ref.push_back({i, i});
  const auto folds = eval::MakeFolds(ref, GetParam(), 0.1, 9);
  ASSERT_EQ(folds.size(), static_cast<size_t>(GetParam()));
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.valid.size() + fold.test.size(),
              ref.size());
    std::set<int> seen;
    for (const auto* part : {&fold.train, &fold.valid, &fold.test}) {
      for (const auto& p : *part) {
        EXPECT_TRUE(seen.insert(p.left).second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FoldCounts, FoldPropertyTest,
                         ::testing::Values(2, 4, 5, 10));

// ---------------------------------------------------------------------------
// Unified-KG invariants across combination modes.
// ---------------------------------------------------------------------------

class UnifiedKgPropertyTest
    : public ::testing::TestWithParam<interaction::CombinationMode> {};

TEST_P(UnifiedKgPropertyTest, TriplesStayInBounds) {
  datagen::SyntheticKgConfig config;
  config.num_entities = 150;
  config.seed = 3;
  const auto gen1 = datagen::GenerateSyntheticKg(config);
  config.seed = 4;
  config.namespace_prefix = "x";
  const auto gen2 = datagen::GenerateSyntheticKg(config);
  core::AlignmentTask task;
  task.kg1 = &gen1.graph;
  task.kg2 = &gen2.graph;
  kg::Alignment seeds;
  for (int i = 0; i < 30; ++i) seeds.push_back({i, i});
  task.train = seeds;

  const auto unified = interaction::BuildUnifiedKg(task, GetParam(), seeds);
  EXPECT_EQ(unified.num_entities,
            gen1.graph.NumEntities() + gen2.graph.NumEntities());
  for (const kg::Triple& t : unified.triples) {
    EXPECT_GE(t.head, 0);
    EXPECT_LT(static_cast<size_t>(t.head), unified.num_entities);
    EXPECT_LT(static_cast<size_t>(t.tail), unified.num_entities);
    EXPECT_LT(static_cast<size_t>(t.relation), unified.num_relations);
  }
  EXPECT_EQ(unified.merged_seeds.size(), seeds.size());
  // The merged triples always contain at least both KGs' triples.
  EXPECT_GE(unified.triples.size(),
            gen1.graph.NumTriples() + gen2.graph.NumTriples());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, UnifiedKgPropertyTest,
    ::testing::Values(interaction::CombinationMode::kNone,
                      interaction::CombinationMode::kSharing,
                      interaction::CombinationMode::kSwapping));

// ---------------------------------------------------------------------------
// String / text invariants.
// ---------------------------------------------------------------------------

TEST(StringPropertyTest, EditDistanceTriangleInequality) {
  const auto words = datagen::GeneratePseudoWords(30, 5);
  for (size_t i = 0; i < 10; ++i) {
    const auto& a = words[i];
    const auto& b = words[i + 10];
    const auto& c = words[i + 20];
    EXPECT_LE(EditDistance(a, c),
              EditDistance(a, b) + EditDistance(b, c));
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));  // Symmetry.
  }
}

TEST(TranslationPropertyTest, RoundTripOverWholeVocabulary) {
  const auto source = datagen::GeneratePseudoWords(100, 7);
  const auto target = datagen::GeneratePseudoWords(100, 8);
  text::TranslationDictionary dict;
  for (size_t i = 0; i < source.size(); ++i) {
    dict.AddPair(source[i], target[i]);
  }
  for (const auto& w : source) {
    EXPECT_EQ(dict.UntranslateWord(dict.TranslateWord(w)), w);
  }
}

// ---------------------------------------------------------------------------
// Graph-stat invariants across generator seeds.
// ---------------------------------------------------------------------------

class GraphStatPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphStatPropertyTest, DistributionsAndRanksAreConsistent) {
  datagen::SyntheticKgConfig config;
  config.num_entities = 300;
  config.seed = GetParam();
  const auto gen = datagen::GenerateSyntheticKg(config);
  const auto dist = kg::ComputeDegreeDistribution(gen.graph);
  double sum = 0.0;
  for (double p : dist.proportion) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Self-JS is zero; JS to a shifted variant is positive and symmetric.
  EXPECT_NEAR(kg::JensenShannonDivergence(dist, dist), 0.0, 1e-12);
  const auto pr = kg::PageRank(gen.graph);
  double pr_sum = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(pr_sum, 1.0, 1e-6);
  for (double v : pr) EXPECT_GT(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphStatPropertyTest,
                         ::testing::Values(1, 7, 42, 1234));

// ---------------------------------------------------------------------------
// Linear algebra invariants.
// ---------------------------------------------------------------------------

TEST(LeastSquaresPropertyTest, IdentityMapRecovered) {
  const auto x = RandomMatrix(40, 6, 3);
  const auto m = math::LeastSquaresMap(x, x, 1e-6f);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(m.At(i, j), i == j ? 1.0f : 0.0f, 1e-2);
    }
  }
}

TEST(GemmPropertyTest, AssociativityWithVectors) {
  Rng rng(5);
  const auto a = RandomMatrix(7, 5, 1);
  std::vector<float> x(5), y1(7), tmp(5);
  for (float& v : x) v = rng.NextFloat(-1, 1);
  // (A x) computed directly vs. via transpose twice.
  MatVec(a, x, y1);
  std::vector<float> y2(7, 0.0f);
  const auto at = a.Transposed();
  MatTransposeVec(at, x, y2);
  for (size_t i = 0; i < 7; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-5);
  (void)tmp;
}

}  // namespace
}  // namespace openea
