// End-to-end fault-injection scenarios (ctest label: fault_injection).
//
// The kill/resume tests spawn tests/cv_resume_driver.cc as a subprocess
// (the fault registry's kKill action `_exit`s the process, so it cannot run
// in the test binary itself), kill it at an armed checkpoint fault point,
// resume from the checkpoint directory, and require the result to be byte-
// identical to an uninterrupted run — at 1 thread and at 8 threads. The
// NaN-recovery and torn-write scenarios run in-process against
// core::RunCrossValidation directly.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifdef __unix__
#include <sys/wait.h>
#endif

#include <gtest/gtest.h>

#include "src/common/fault.h"
#include "src/common/telemetry.h"
#include "src/core/benchmark.h"
#include "src/core/registry.h"
#include "src/datagen/kg_pair.h"

#ifndef OPENEA_CV_RESUME_DRIVER
#error "OPENEA_CV_RESUME_DRIVER must point at the cv_resume_driver binary"
#endif

namespace openea {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    // Unique per test: ctest runs cases as concurrent processes, and a
    // shared directory would let one test's SetUp wipe another's files.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("openea_fault_injection_") + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::DisarmAll();
    std::filesystem::remove_all(dir_);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

/// Runs the driver with `args`; returns the process exit code (-1 when the
/// shell could not run it at all).
int RunDriver(const std::string& args) {
  const std::string command =
      std::string("\"") + OPENEA_CV_RESUME_DRIVER + "\" " + args;
  const int raw = std::system(command.c_str());
  if (raw == -1) return -1;
#ifdef WEXITSTATUS
  if (WIFEXITED(raw)) return WEXITSTATUS(raw);
  return -1;
#else
  return raw;
#endif
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

core::BenchmarkDataset TinyDataset() {
  return core::BuildBenchmarkDataset(
      datagen::HeterogeneityProfile::EnFr(),
      core::ScalePreset{"tiny", 500, 250, 25.0}, false, 5);
}

core::TrainConfig TinyConfig(int threads) {
  core::TrainConfig config;
  config.dim = 16;
  config.max_epochs = 10;
  config.seed = 7;
  config.threads = threads;
  return config;
}

/// The tentpole determinism claim: kill the run at the checkpoint fault
/// point after the second fold's checkpoint is durable, resume, and require
/// the exact bytes of an uninterrupted run.
void KillAndResumeBitIdentical(int threads) {
  const auto base = std::filesystem::temp_directory_path() /
                    ("openea_fault_injection_t" + std::to_string(threads));
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);
  const std::string ckpt_dir = (base / "ckpt").string();
  const std::string uninterrupted_out = (base / "uninterrupted.bin").string();
  const std::string resumed_out = (base / "resumed.bin").string();
  const std::string common = "--approach=MTransE --folds=3 --epochs=10 "
                             "--seed=7 --threads=" +
                             std::to_string(threads) + " ";

  // Reference: no checkpointing, no faults.
  ASSERT_EQ(RunDriver(common + "--out=" + uninterrupted_out), 0);

  // Victim: killed at "checkpoint/after_write" hit 2 — fold 0 and fold 1
  // checkpoints are durable, fold 2 never runs. _exit(86) skips every
  // destructor, simulating SIGKILL mid-run.
  ASSERT_EQ(RunDriver(common + "--checkpoint-dir=" + ckpt_dir +
                      " --fault=checkpoint/after_write:2:kill"),
            fault::kKillExitCode);

  // Resume: folds 0-1 restore from the checkpoint, fold 2 computes fresh.
  ASSERT_EQ(RunDriver(common + "--checkpoint-dir=" + ckpt_dir +
                      " --resume --out=" + resumed_out),
            0);

  const std::string uninterrupted = ReadAll(uninterrupted_out);
  const std::string resumed = ReadAll(resumed_out);
  ASSERT_FALSE(uninterrupted.empty());
  EXPECT_EQ(uninterrupted, resumed)
      << "killed-and-resumed run diverged from the uninterrupted run at "
      << threads << " thread(s)";
  std::filesystem::remove_all(base);
}

TEST_F(FaultInjectionTest, KillAndResumeBitIdenticalSingleThread) {
  KillAndResumeBitIdentical(1);
}

TEST_F(FaultInjectionTest, KillAndResumeBitIdenticalEightThreads) {
  KillAndResumeBitIdentical(8);
}

/// Out-of-core variant of the tentpole claim, with a deliberately stronger
/// reference: the uninterrupted run is the plain *in-RAM* eval path, while
/// the killed-and-resumed run evaluates through shard-banked tables
/// (--shard-dir). Byte equality therefore pins two contracts at once —
/// sharded eval is bit-identical to in-RAM eval, and a kill between a
/// fold's shard write and its checkpoint write resumes losslessly.
void ShardedKillAndResumeMatchesInRamReference(int threads) {
  const auto base = std::filesystem::temp_directory_path() /
                    ("openea_fault_injection_shard_t" + std::to_string(threads));
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);
  const std::string ckpt_dir = (base / "ckpt").string();
  const std::string shard_dir = (base / "shards").string();
  const std::string reference_out = (base / "in_ram.bin").string();
  const std::string resumed_out = (base / "resumed.bin").string();
  const std::string common = "--approach=MTransE --folds=3 --epochs=10 "
                             "--seed=7 --threads=" +
                             std::to_string(threads) + " ";

  // Reference: uninterrupted, in-RAM eval, no checkpointing.
  ASSERT_EQ(RunDriver(common + "--out=" + reference_out), 0);

  // Victim: sharded eval, killed at "shard/after_write" hit 2 — fold 1's
  // eval shard is durable on disk but its fold checkpoint is not yet
  // written, the mid-shard crash window. _exit(86) skips every destructor.
  ASSERT_EQ(RunDriver(common + "--checkpoint-dir=" + ckpt_dir +
                      " --shard-dir=" + shard_dir +
                      " --fault=shard/after_write:2:kill"),
            fault::kKillExitCode);

  // Resume, still sharded: fold 0 restores from its checkpoint, folds 1-2
  // recompute (overwriting fold 1's orphaned shard file).
  ASSERT_EQ(RunDriver(common + "--checkpoint-dir=" + ckpt_dir +
                      " --shard-dir=" + shard_dir + " --resume --out=" +
                      resumed_out),
            0);

  const std::string reference = ReadAll(reference_out);
  const std::string resumed = ReadAll(resumed_out);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference, resumed)
      << "sharded killed-and-resumed run diverged from the in-RAM "
      << "uninterrupted run at " << threads << " thread(s)";
  std::filesystem::remove_all(base);
}

TEST_F(FaultInjectionTest, ShardedKillAndResumeBitIdenticalSingleThread) {
  ShardedKillAndResumeMatchesInRamReference(1);
}

TEST_F(FaultInjectionTest, ShardedKillAndResumeBitIdenticalEightThreads) {
  ShardedKillAndResumeMatchesInRamReference(8);
}

TEST_F(FaultInjectionTest, KillBeforeAnyCheckpointResumesFromScratch) {
  const std::string ckpt_dir = Path("ckpt_first");
  const std::string uninterrupted_out = Path("u.bin");
  const std::string resumed_out = Path("r.bin");
  const std::string common =
      "--approach=MTransE --folds=2 --epochs=6 --seed=11 --threads=1 ";
  ASSERT_EQ(RunDriver(common + "--out=" + uninterrupted_out), 0);
  // Killed at the very first checkpoint write: fold 0 is durable, nothing
  // else. (hit 1, not 2.)
  ASSERT_EQ(RunDriver(common + "--checkpoint-dir=" + ckpt_dir +
                      " --fault=checkpoint/after_write:1:kill"),
            fault::kKillExitCode);
  ASSERT_EQ(RunDriver(common + "--checkpoint-dir=" + ckpt_dir +
                      " --resume --out=" + resumed_out),
            0);
  EXPECT_EQ(ReadAll(uninterrupted_out), ReadAll(resumed_out));
}

TEST_F(FaultInjectionTest, TransientNaNRetriesAndRecovers) {
  // A single injected NaN epoch: the health guard retries the fold with a
  // backed-off learning rate, the retry is clean, and no fold is degraded.
  fault::Spec spec;
  spec.point = "train/epoch_loss";
  spec.hit = 1;
  fault::Arm(spec);

  const auto dataset = TinyDataset();
  core::CheckpointConfig checkpoint_config;  // No checkpointing; guards only.
  const auto result = core::RunCrossValidation("MTransE", dataset,
                                               TinyConfig(1), 1,
                                               checkpoint_config);
  ASSERT_EQ(result.fold_health.size(), 1u);
  EXPECT_EQ(result.fold_health[0].retries, 1);
  EXPECT_FALSE(result.fold_health[0].degraded);
  EXPECT_EQ(result.DegradedFolds(), 0);
  EXPECT_EQ(result.fold_health[0].verdict, health::Verdict::kHealthy);
  EXPECT_GT(result.hits1.mean, 0.0);
  EXPECT_EQ(fault::FiredCount("train/epoch_loss"), 1u);
}

TEST_F(FaultInjectionTest, PersistentNaNDegradesFoldInsteadOfCrashing) {
  telemetry::ResetForTesting();
  telemetry::SetCollectForTesting(true);
  // Every epoch's loss is poisoned: retries cannot help, the fold must be
  // marked degraded, excluded from the aggregates, and counted in the
  // fault/* telemetry — and the run must not crash or return NaN means.
  fault::Spec spec;
  spec.point = "train/epoch_loss";
  spec.hit = 1;
  spec.repeat = true;
  fault::Arm(spec);

  const auto dataset = TinyDataset();
  core::CheckpointConfig checkpoint_config;
  checkpoint_config.max_retries = 2;
  const auto result = core::RunCrossValidation("MTransE", dataset,
                                               TinyConfig(1), 1,
                                               checkpoint_config);
  ASSERT_EQ(result.fold_health.size(), 1u);
  EXPECT_TRUE(result.fold_health[0].degraded);
  EXPECT_EQ(result.fold_health[0].retries, 2);
  EXPECT_EQ(result.fold_health[0].verdict, health::Verdict::kNonFinite);
  EXPECT_EQ(result.DegradedFolds(), 1);
  // Degraded folds are excluded: the aggregate is the empty-set default,
  // never NaN.
  EXPECT_EQ(result.hits1.mean, 0.0);
  EXPECT_EQ(result.hits1.mean, result.hits1.mean);  // Not NaN.

  const auto metrics = telemetry::SnapshotMetrics();
  EXPECT_EQ(metrics.counters.at("fault/retries"), 2u);
  EXPECT_EQ(metrics.counters.at("fault/diverged_folds"), 1u);
  telemetry::SetCollectForTesting(false);
  telemetry::ResetForTesting();
}

TEST_F(FaultInjectionTest, TornCheckpointFallsBackToCleanRecompute) {
  const auto dataset = TinyDataset();
  const auto config = TinyConfig(1);
  core::CheckpointConfig checkpoint_config;
  checkpoint_config.directory = Path("ckpt_torn");

  // Run 1 writes a complete checkpoint.
  const auto reference =
      core::RunCrossValidation("MTransE", dataset, config, 2,
                               checkpoint_config);

  // Damage every checkpoint in the directory (simulates the torn write
  // that escaped the rename barrier).
  size_t damaged = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(checkpoint_config.directory)) {
    std::filesystem::resize_file(
        entry.path(), std::filesystem::file_size(entry.path()) / 2);
    ++damaged;
  }
  ASSERT_GT(damaged, 0u);

  // Resume over the damaged checkpoint: it must be ignored (not trusted,
  // not fatal) and the recomputed result must match the reference.
  checkpoint_config.resume = true;
  const auto recomputed =
      core::RunCrossValidation("MTransE", dataset, config, 2,
                               checkpoint_config);
  EXPECT_EQ(recomputed.hits1.mean, reference.hits1.mean);
  EXPECT_EQ(recomputed.mrr.mean, reference.mrr.mean);
  ASSERT_EQ(recomputed.fold_health.size(), 2u);
  EXPECT_FALSE(recomputed.fold_health[0].resumed);
  EXPECT_FALSE(recomputed.fold_health[1].resumed);
}

TEST_F(FaultInjectionTest, ConfigChangeInvalidatesCheckpoint) {
  const auto dataset = TinyDataset();
  core::CheckpointConfig checkpoint_config;
  checkpoint_config.directory = Path("ckpt_fp");
  const auto first = core::RunCrossValidation("MTransE", dataset,
                                              TinyConfig(1), 2,
                                              checkpoint_config);

  // Same checkpoint directory, different seed: the fingerprint must reject
  // the stale folds instead of splicing them into the new run.
  core::TrainConfig other = TinyConfig(1);
  other.seed = 1234;
  checkpoint_config.resume = true;
  const auto second = core::RunCrossValidation("MTransE", dataset, other, 2,
                                               checkpoint_config);
  ASSERT_EQ(second.fold_health.size(), 2u);
  EXPECT_FALSE(second.fold_health[0].resumed);
  EXPECT_FALSE(second.fold_health[1].resumed);
}

TEST_F(FaultInjectionTest, SeedCorruptFaultForcesCorruptionAtZeroRate) {
  // The datagen/seed_corrupt point is hit once per reference pair; arming
  // it through the --fault flag grammar forces corruption of the n-th pair
  // even at seed_noise_rate 0 — without perturbing the rng stream, so the
  // rest of the dataset is bit-identical to a clean run.
  datagen::SyntheticKgConfig source;
  source.num_entities = 200;
  source.seed = 3;
  datagen::HeterogeneityProfile profile;  // seed_noise_rate = 0.

  const datagen::DatasetPair clean =
      datagen::GenerateDatasetPair(source, profile, 3);
  ASSERT_TRUE(clean.corruptions.empty());

  ASSERT_TRUE(fault::ArmFromFlag("datagen/seed_corrupt:5:fail").ok());
  const datagen::DatasetPair forced =
      datagen::GenerateDatasetPair(source, profile, 3);
  EXPECT_EQ(fault::FiredCount("datagen/seed_corrupt"), 1u);
  EXPECT_EQ(fault::HitCount("datagen/seed_corrupt"),
            forced.reference.size());
  fault::DisarmAll();

  // Exactly the 5th pair is corrupted; everything else matches the clean
  // run (including the dangling bookkeeping and the rest of the alignment).
  ASSERT_EQ(forced.corruptions.size(), 1u);
  EXPECT_EQ(forced.corruptions[0].index, 4u);
  ASSERT_EQ(forced.reference.size(), clean.reference.size());
  for (size_t i = 0; i < forced.reference.size(); ++i) {
    EXPECT_EQ(forced.reference[i].left, clean.reference[i].left);
    EXPECT_EQ(forced.reference[i].right, clean.reference[i].right);
    if (i == 4) {
      EXPECT_NE(forced.noisy_reference[i].right, forced.reference[i].right);
    } else {
      EXPECT_EQ(forced.noisy_reference[i].right, clean.reference[i].right);
    }
  }
  EXPECT_EQ(forced.dangling1, clean.dangling1);
  EXPECT_EQ(forced.dangling2, clean.dangling2);
}

TEST_F(FaultInjectionTest, ResumeRestoresCompletedFoldsWithoutRecompute) {
  const auto dataset = TinyDataset();
  const auto config = TinyConfig(1);
  core::CheckpointConfig checkpoint_config;
  checkpoint_config.directory = Path("ckpt_resume");

  const auto reference =
      core::RunCrossValidation("MTransE", dataset, config, 2,
                               checkpoint_config);

  // Resume with everything already done: both folds restore, metrics and
  // first-fold artifacts are bit-identical.
  checkpoint_config.resume = true;
  const auto resumed =
      core::RunCrossValidation("MTransE", dataset, config, 2,
                               checkpoint_config);
  ASSERT_EQ(resumed.fold_health.size(), 2u);
  EXPECT_TRUE(resumed.fold_health[0].resumed);
  EXPECT_TRUE(resumed.fold_health[1].resumed);
  EXPECT_EQ(resumed.hits1.mean, reference.hits1.mean);
  EXPECT_EQ(resumed.hits1.std, reference.hits1.std);
  EXPECT_EQ(resumed.mrr.mean, reference.mrr.mean);
  ASSERT_EQ(resumed.first_fold_model.emb1.size(),
            reference.first_fold_model.emb1.size());
  EXPECT_TRUE(std::equal(resumed.first_fold_model.emb1.Data().begin(),
                         resumed.first_fold_model.emb1.Data().end(),
                         reference.first_fold_model.emb1.Data().begin()));
  EXPECT_EQ(resumed.first_fold_test.size(), reference.first_fold_test.size());
}

}  // namespace
}  // namespace openea
