// Tests for the telemetry subsystem: metric registry semantics, span
// nesting/aggregation, the JSON export round-trip, thread-safety under
// ParallelFor, and the determinism contract — collection-enabled runs must
// be bit-identical to collection-off runs at any thread count (DESIGN.md,
// "Observability").

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/json.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/common/telemetry.h"
#include "src/embedding/triple_model.h"
#include "src/interaction/trainer.h"
#include "src/math/embedding_table.h"

namespace openea {
namespace {

/// Restores the global thread count on scope exit (shared gtest process).
struct ThreadGuard {
  int saved = Threads();
  ~ThreadGuard() { SetThreads(saved); }
};

/// Turns collection on for the test body and wipes all telemetry state on
/// both ends, so tests compose in any order within the shared binary.
struct CollectGuard {
  CollectGuard() {
    telemetry::ResetForTesting();
    telemetry::SetCollectForTesting(true);
  }
  ~CollectGuard() {
    telemetry::SetCollectForTesting(false);
    telemetry::DetachSink();
    telemetry::ResetForTesting();
  }
};

TEST(TelemetryMetricsTest, CountersAccumulateAndGaugesLastWriteWins) {
  CollectGuard collect;
  telemetry::IncrCounter("t/counter");
  telemetry::IncrCounter("t/counter", 4);
  telemetry::SetGauge("t/gauge", 1.5);
  telemetry::SetGauge("t/gauge", -2.5);
  const auto snap = telemetry::SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("t/counter"), 5u);
  EXPECT_EQ(snap.gauges.at("t/gauge"), -2.5);
}

TEST(TelemetryMetricsTest, MetricsAreDroppedWhileCollectionIsOff) {
  telemetry::ResetForTesting();
  ASSERT_FALSE(telemetry::Enabled());
  telemetry::IncrCounter("t/off_counter");
  telemetry::SetGauge("t/off_gauge", 1.0);
  telemetry::Observe("t/off_hist", 1.0);
  telemetry::AppendSeries("t/off_series", 1.0);
  const auto snap = telemetry::SnapshotMetrics();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.series.empty());
}

TEST(TelemetryMetricsTest, HistogramBucketsCountAndBounds) {
  CollectGuard collect;
  telemetry::DefineHistogram("t/hist", {1.0, 10.0, 100.0});
  for (double v : {0.5, 0.9, 5.0, 50.0, 500.0, 5000.0}) {
    telemetry::Observe("t/hist", v);
  }
  const auto snap = telemetry::SnapshotMetrics();
  const auto& h = snap.histograms.at("t/hist");
  ASSERT_EQ(h.bounds, (std::vector<double>{1.0, 10.0, 100.0}));
  // counts has one overflow bucket past the last bound.
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.counts[0], 2u);  // 0.5, 0.9 <= 1
  EXPECT_EQ(h.counts[1], 1u);  // 5
  EXPECT_EQ(h.counts[2], 1u);  // 50
  EXPECT_EQ(h.counts[3], 2u);  // 500, 5000 above every bound
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.min, 0.5);
  EXPECT_EQ(h.max, 5000.0);
  EXPECT_NEAR(h.sum, 5556.4, 1e-9);
}

TEST(TelemetryMetricsTest, UndeclaredHistogramGetsDefaultDecadeBuckets) {
  CollectGuard collect;
  telemetry::Observe("t/default_hist", 0.02);
  const auto snap = telemetry::SnapshotMetrics();
  const auto& h = snap.histograms.at("t/default_hist");
  EXPECT_GE(h.bounds.size(), 5u);
  EXPECT_EQ(h.count, 1u);
}

TEST(TelemetryMetricsTest, SeriesAppendInOrderAndAreCapped) {
  CollectGuard collect;
  for (int i = 0; i < 5; ++i) {
    telemetry::AppendSeries("t/series", static_cast<double>(i));
  }
  const auto snap = telemetry::SnapshotMetrics();
  EXPECT_EQ(snap.series.at("t/series"),
            (std::vector<double>{0.0, 1.0, 2.0, 3.0, 4.0}));
}

TEST(TelemetrySpanTest, NestedSpansAggregateUnderSlashJoinedPaths) {
  CollectGuard collect;
  for (int i = 0; i < 3; ++i) {
    telemetry::ScopedSpan outer("outer");
    { telemetry::ScopedSpan inner("inner"); }
    { telemetry::ScopedSpan inner("inner"); }
  }
  { telemetry::ScopedSpan lone("inner"); }
  const auto spans = telemetry::SnapshotSpans();
  ASSERT_EQ(spans.size(), 3u);  // Sorted: inner, outer, outer/inner.
  EXPECT_EQ(spans[0].path, "inner");
  EXPECT_EQ(spans[0].count, 1u);
  EXPECT_EQ(spans[1].path, "outer");
  EXPECT_EQ(spans[1].count, 3u);
  EXPECT_EQ(spans[2].path, "outer/inner");
  EXPECT_EQ(spans[2].count, 6u);
  for (const auto& s : spans) {
    EXPECT_GE(s.total_ms, 0.0) << s.path;
    EXPECT_LE(s.min_ms, s.max_ms) << s.path;
    EXPECT_GE(s.total_ms, s.max_ms) << s.path;
  }
}

TEST(TelemetrySpanTest, SpansAreFreeWhenCollectionIsOff) {
  telemetry::ResetForTesting();
  ASSERT_FALSE(telemetry::Enabled());
  { telemetry::ScopedSpan span("ghost"); }
  EXPECT_TRUE(telemetry::SnapshotSpans().empty());
}

TEST(TelemetryThreadingTest, CountersAndSpansSurviveParallelForContention) {
  ThreadGuard guard;
  CollectGuard collect;
  SetThreads(8);
  const size_t n = 20'000;
  ParallelFor(0, n, 64, [](size_t lo, size_t hi) {
    telemetry::ScopedSpan span("worker_chunk");
    for (size_t i = lo; i < hi; ++i) {
      telemetry::IncrCounter("t/parallel_hits");
    }
    telemetry::Observe("t/parallel_obs", static_cast<double>(hi - lo));
  });
  const auto snap = telemetry::SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("t/parallel_hits"), n);
  // ParallelFor itself reports per-job metrics on the forked path.
  EXPECT_EQ(snap.counters.at("parallel/jobs"), 1u);
  EXPECT_GE(snap.counters.at("parallel/chunks"), 2u);
  EXPECT_EQ(snap.histograms.at("t/parallel_obs").count,
            snap.counters.at("parallel/chunks"));
  EXPECT_GE(snap.histograms.at("parallel/chunk_imbalance").count, 1u);
  bool found = false;
  for (const auto& s : telemetry::SnapshotSpans()) {
    if (s.path == "worker_chunk") {
      found = true;
      EXPECT_EQ(s.count, snap.counters.at("parallel/chunks"));
    }
  }
  EXPECT_TRUE(found);
}

TEST(TelemetryExportTest, BuildExportDocumentHasSchemaStableKeys) {
  CollectGuard collect;
  telemetry::IncrCounter("t/c", 3);
  telemetry::SetGauge("t/g", 0.25);
  telemetry::Observe("t/h", 2.0);
  telemetry::AppendSeries("t/s", 7.0);
  { telemetry::ScopedSpan span("phase"); }
  json::Value::Object context;
  context.emplace("bench", "unit");
  const json::Value doc = telemetry::BuildExportDocument(
      json::Value(std::move(context)), telemetry::SnapshotMetrics(),
      telemetry::SnapshotSpans());
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.Find("schema_version"), nullptr);
  EXPECT_EQ(doc.Find("schema_version")->number(), 1.0);
  ASSERT_NE(doc.Find("bench"), nullptr);
  EXPECT_EQ(doc.Find("bench")->string_value(), "unit");
  for (const char* key : {"counters", "gauges", "histograms", "series"}) {
    ASSERT_NE(doc.Find(key), nullptr) << key;
    EXPECT_TRUE(doc.Find(key)->is_object()) << key;
  }
  ASSERT_NE(doc.Find("spans"), nullptr);
  ASSERT_TRUE(doc.Find("spans")->is_array());
  ASSERT_EQ(doc.Find("spans")->array().size(), 1u);
  const json::Value& span = doc.Find("spans")->array()[0];
  for (const char* key : {"path", "count", "total_ms", "min_ms", "max_ms"}) {
    EXPECT_NE(span.Find(key), nullptr) << key;
  }
  const auto& hist = doc.Find("histograms")->object().at("t/h");
  for (const char* key :
       {"bounds", "bucket_counts", "count", "sum", "min", "max"}) {
    EXPECT_NE(hist.Find(key), nullptr) << key;
  }
}

TEST(TelemetryExportTest, JsonSinkRoundTripsThroughParser) {
  CollectGuard collect;
  const std::string path =
      ::testing::TempDir() + "/telemetry_roundtrip.json";
  telemetry::IncrCounter("t/exported", 9);
  telemetry::SetGauge("t/ratio", 0.5);
  { telemetry::ScopedSpan span("export_phase"); }
  telemetry::AttachSink(std::make_unique<telemetry::JsonSink>(path));
  json::Value::Object context;
  context.emplace("bench", "roundtrip");
  telemetry::SetContext(json::Value(std::move(context)));
  telemetry::Flush();

  json::Value doc;
  const Status read = json::ReadFile(path, &doc);
  ASSERT_TRUE(read.ok()) << read.ToString();
  EXPECT_EQ(doc.Find("bench")->string_value(), "roundtrip");
  EXPECT_EQ(doc.Find("counters")->object().at("t/exported").number(), 9.0);
  EXPECT_EQ(doc.Find("gauges")->object().at("t/ratio").number(), 0.5);
  std::remove(path.c_str());
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  json::Value out;
  EXPECT_FALSE(json::Parse("", &out).ok());
  EXPECT_FALSE(json::Parse("{", &out).ok());
  EXPECT_FALSE(json::Parse("[1, 2,]", &out).ok());
  EXPECT_FALSE(json::Parse("{\"a\": 1} extra", &out).ok());
  EXPECT_FALSE(json::Parse("nul", &out).ok());
}

TEST(JsonTest, DumpParseRoundTripPreservesStructure) {
  json::Value::Object obj;
  obj.emplace("flag", true);
  obj.emplace("name", "a \"quoted\" string\nwith newline");
  obj.emplace("nothing", json::Value());
  obj.emplace("nums", json::Value::Array{1.5, -2, 1e6});
  const json::Value original{std::move(obj)};
  json::Value parsed;
  ASSERT_TRUE(json::Parse(original.Dump(), &parsed).ok());
  EXPECT_EQ(parsed.Dump(), original.Dump());
  EXPECT_EQ(parsed.Find("flag")->bool_value(), true);
  EXPECT_TRUE(parsed.Find("nothing")->is_null());
  EXPECT_EQ(parsed.Find("nums")->array()[2].number(), 1e6);
}

std::vector<kg::Triple> RandomTriples(size_t count, size_t entities,
                                      size_t relations, uint64_t seed) {
  Rng rng(seed);
  std::vector<kg::Triple> triples(count);
  for (auto& t : triples) {
    t.head = static_cast<kg::EntityId>(rng.NextBounded(entities));
    t.relation = static_cast<kg::RelationId>(rng.NextBounded(relations));
    t.tail = static_cast<kg::EntityId>(rng.NextBounded(entities));
  }
  return triples;
}

std::vector<float> FlattenTable(const math::EmbeddingTable& table) {
  std::vector<float> flat;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const auto row = table.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

/// The core zero-perturbation pin: a sharded training epoch with collection
/// enabled must be bit-identical to the collection-off run, serial and
/// parallel alike — instrumentation may observe but never steer.
TEST(TelemetryDeterminismTest, TrainEpochBitIdenticalWithCollectionOn) {
  ThreadGuard guard;
  const auto triples = RandomTriples(600, 80, 10, 9);
  auto run = [&](int threads, bool collect) {
    telemetry::ResetForTesting();
    telemetry::SetCollectForTesting(collect);
    SetThreads(threads);
    Rng model_rng(11);
    auto model = embedding::CreateTripleModel(
        embedding::TripleModelKind::kTransE, 80, 10,
        embedding::TripleModelOptions{}, model_rng);
    Rng epoch_rng(42);
    const float loss =
        interaction::TrainEpoch(*model, triples, 2, epoch_rng, nullptr,
                                interaction::EpochMode::kSharded);
    telemetry::SetCollectForTesting(false);
    return std::make_pair(loss, FlattenTable(model->entity_table()));
  };
  const auto baseline = run(1, /*collect=*/false);
  for (int threads : {1, 8}) {
    const auto observed = run(threads, /*collect=*/true);
    EXPECT_EQ(observed.first, baseline.first) << threads << " threads";
    ASSERT_EQ(observed.second, baseline.second) << threads << " threads";
  }
  telemetry::ResetForTesting();
}

TEST(TelemetryDeterminismTest, TrainEpochRecordsPerEpochMetrics) {
  ThreadGuard guard;
  CollectGuard collect;
  SetThreads(2);
  const auto triples = RandomTriples(600, 80, 10, 9);
  Rng model_rng(11);
  auto model = embedding::CreateTripleModel(
      embedding::TripleModelKind::kTransE, 80, 10,
      embedding::TripleModelOptions{}, model_rng);
  Rng epoch_rng(42);
  for (int epoch = 0; epoch < 3; ++epoch) {
    interaction::TrainEpoch(*model, triples, 2, epoch_rng, nullptr,
                            interaction::EpochMode::kSharded);
  }
  const auto snap = telemetry::SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("train/pair_epochs"), 3u);
  EXPECT_EQ(snap.counters.at("train/positives"), 3u * 600u);
  EXPECT_EQ(snap.series.at("train/pair_loss").size(), 3u);
  EXPECT_EQ(snap.histograms.at("train/pair_epoch_ms").count, 3u);
  bool saw_epoch_span = false;
  for (const auto& s : telemetry::SnapshotSpans()) {
    if (s.path == "train_epoch") {
      saw_epoch_span = true;
      EXPECT_EQ(s.count, 3u);
    }
  }
  EXPECT_TRUE(saw_epoch_span);
}

}  // namespace
}  // namespace openea
