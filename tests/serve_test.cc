// End-to-end suite for align-serve (src/serve/), registered under the
// `serve` ctest label. Each test forks the real binary (path injected via
// OPENEA_ALIGN_SERVE) with its stdin/stdout on pipes and drives the NDJSON
// protocol: a 1000-query batched session must return ids and scores
// bit-identical to a local exact top-k, malformed requests and fingerprint
// mismatches must come back as in-order Status errors without killing the
// session, and the --json telemetry must pass validate_bench_json and
// carry the serving metrics (qps, latency percentiles, batch sizes).

#include <gtest/gtest.h>
#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/align/candidate_source.h"
#include "src/common/checkpoint.h"
#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/core/benchmark.h"
#include "src/math/matrix.h"
#include "src/serve/server.h"

namespace openea::serve {
namespace {

std::string TempDir() {
  std::string tmpl = ::testing::TempDir() + "serve_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return std::string(dir);
}

/// Writes a two-table TrainState (source KG = table 0, target KG = table 1)
/// and returns its path.
std::string WriteCheckpoint(const std::string& dir, size_t rows, size_t dim,
                            uint64_t seed) {
  Rng rng(seed);
  checkpoint::TrainState state;
  state.epoch = 3;
  state.learning_rate = 0.01f;
  state.tables.emplace_back(rows, dim, math::InitScheme::kUniform, rng);
  state.tables.emplace_back(rows, dim, math::InitScheme::kUniform, rng);
  const std::string path = dir + "/model.ckpt";
  EXPECT_TRUE(checkpoint::SaveTrainState(path, state).ok());
  return path;
}

math::Matrix TableMatrix(const math::EmbeddingTable& table) {
  math::Matrix out(table.num_rows(), table.dim());
  const auto data = table.Data();
  std::copy(data.begin(), data.end(), out.Data().begin());
  return out;
}

/// The forked server with its stdin/stdout piped to the test.
class ServeProcess {
 public:
  explicit ServeProcess(std::vector<std::string> extra_args) {
    int to_child[2], from_child[2];
    EXPECT_EQ(::pipe(to_child), 0);
    EXPECT_EQ(::pipe(from_child), 0);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<char*> argv;
      static std::string binary = OPENEA_ALIGN_SERVE;
      argv.push_back(binary.data());
      for (auto& arg : extra_args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::perror("execv align-serve");
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
  }

  ~ServeProcess() {
    if (in_fd_ >= 0) ::close(in_fd_);
    if (out_fd_ >= 0) ::close(out_fd_);
    if (pid_ > 0) ::waitpid(pid_, nullptr, 0);
  }

  void Send(const std::string& line) {
    const std::string framed = line + "\n";
    size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          ::write(in_fd_, framed.data() + off, framed.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  }

  void CloseInput() {
    if (in_fd_ >= 0) ::close(in_fd_);
    in_fd_ = -1;
  }

  /// Blocking read of the next response line (EOF fails the test).
  std::string ReadLine() {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(out_fd_, chunk, sizeof(chunk));
      EXPECT_GT(n, 0) << "server closed the pipe mid-read";
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  json::Value ReadJson() {
    json::Value value;
    const std::string line = ReadLine();
    EXPECT_TRUE(json::Parse(line, &value).ok()) << "bad line: " << line;
    return value;
  }

  /// Waits for exit and returns the raw status; call after CloseInput().
  int Wait() {
    int status = -1;
    EXPECT_EQ(::waitpid(pid_, &status, 0), pid_);
    pid_ = -1;
    return status;
  }

 private:
  pid_t pid_ = -1;
  int in_fd_ = -1, out_fd_ = -1;
  std::string buffer_;
};

std::string RowsJson(const math::Matrix& queries, size_t begin, size_t count) {
  std::string out = "[";
  for (size_t r = begin; r < begin + count; ++r) {
    if (r != begin) out += ",";
    out += "[";
    const auto row = queries.Row(r);
    for (size_t d = 0; d < row.size(); ++d) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.9g", row[d]);
      if (d != 0) out += ",";
      out += buf;
    }
    out += "]";
  }
  out += "]";
  return out;
}

TEST(ServeTest, BatchedSessionBitIdenticalToLocalExactTopK) {
  const std::string dir = TempDir();
  const std::string ckpt = WriteCheckpoint(dir, 400, 16, 7);
  const std::string json_path = dir + "/BENCH_align_serve.json";

  constexpr size_t kQueries = 1000, kPerRequest = 25, kK = 5;
  Rng rng(99);
  math::Matrix queries(kQueries, 16);
  queries.FillUniform(rng, 1.0f);

  // Local reference: same exact source over the checkpoint's target table.
  const auto state = checkpoint::LoadTrainState(ckpt);
  ASSERT_TRUE(state.ok());
  align::CandidateSourceConfig config;
  auto exact = align::CreateCandidateSourceOrDie(config);
  ASSERT_TRUE(exact->Index(TableMatrix(state->tables[1])).ok());
  const align::TopKResult truth = exact->TopK(queries, kK);

  ServeProcess server({"--checkpoint=" + ckpt, "--source=exact",
                       "--k=" + std::to_string(kK), "--batch=16",
                       "--json=" + json_path});
  const json::Value hello = server.ReadJson();
  ASSERT_TRUE(hello.Find("event") != nullptr);
  EXPECT_EQ(hello.Find("event")->string_value(), "ready");
  EXPECT_EQ(hello.Find("source")->string_value(), "exact");
  EXPECT_EQ(static_cast<size_t>(hello.Find("targets")->number()), 400u);
  const std::string fingerprint = hello.Find("fingerprint")->string_value();
  EXPECT_EQ(fingerprint, ModelFingerprint(*state));

  // Pipeline every request before reading a single response: the server
  // must micro-batch them and still answer in order. The requests plus
  // their responses are far larger than the pipe buffers, so a writer
  // thread keeps pushing while the main thread drains responses.
  std::thread writer([&] {
    for (size_t begin = 0; begin < kQueries; begin += kPerRequest) {
      server.Send("{\"op\":\"topk\",\"id\":" +
                  std::to_string(begin / kPerRequest) +
                  ",\"k\":" + std::to_string(kK) +
                  ",\"fingerprint\":\"" + fingerprint + "\"," +
                  "\"rows\":" + RowsJson(queries, begin, kPerRequest) + "}");
    }
  });
  for (size_t begin = 0; begin < kQueries; begin += kPerRequest) {
    const json::Value response = server.ReadJson();
    ASSERT_TRUE(response.Find("ok") != nullptr);
    ASSERT_TRUE(response.Find("ok")->bool_value())
        << response.Find("error")->string_value();
    EXPECT_EQ(static_cast<size_t>(response.Find("id")->number()),
              begin / kPerRequest);
    const auto& ids = response.Find("ids")->array();
    const auto& scores = response.Find("scores")->array();
    ASSERT_EQ(ids.size(), kPerRequest);
    ASSERT_EQ(scores.size(), kPerRequest);
    for (size_t r = 0; r < kPerRequest; ++r) {
      const auto want = truth.Row(begin + r);
      const auto& row_ids = ids[r].array();
      const auto& row_scores = scores[r].array();
      ASSERT_EQ(row_ids.size(), kK);
      for (size_t t = 0; t < kK; ++t) {
        EXPECT_EQ(static_cast<int>(row_ids[t].number()), want[t].index);
        // %.17g serialization roundtrips the float-widened-to-double score
        // exactly, so the comparison is bit-level.
        EXPECT_EQ(row_scores[t].number(),
                  static_cast<double>(want[t].value));
      }
    }
  }

  writer.join();

  // Stats must report the session so far; shutdown ends it cleanly.
  server.Send("{\"op\":\"stats\",\"id\":\"s\"}");
  const json::Value stats = server.ReadJson();
  EXPECT_TRUE(stats.Find("ok")->bool_value());
  EXPECT_EQ(static_cast<size_t>(stats.Find("queries")->number()), kQueries);
  EXPECT_GT(stats.Find("qps")->number(), 0.0);
  EXPECT_GE(stats.Find("p95_ms")->number(), stats.Find("p50_ms")->number());
  server.Send("{\"op\":\"shutdown\"}");
  const json::Value bye = server.ReadJson();
  EXPECT_EQ(bye.Find("event")->string_value(), "bye");
  server.CloseInput();
  const int status = server.Wait();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The emitted telemetry document passes the bench schema validator and
  // carries the serving metrics.
  const std::string validate =
      std::string(OPENEA_VALIDATE_BENCH_JSON) + " " + json_path;
  EXPECT_EQ(std::system(validate.c_str()), 0);
  json::Value doc;
  ASSERT_TRUE(json::ReadFile(json_path, &doc).ok());
  EXPECT_EQ(doc.Find("bench")->string_value(), "align_serve");
  const json::Value* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  for (const char* key : {"serve/qps", "serve/p50_ms", "serve/p95_ms",
                          "serve/p99_ms"}) {
    ASSERT_NE(gauges->Find(key), nullptr) << key;
    EXPECT_GT(gauges->Find(key)->number(), 0.0) << key;
  }
  const json::Value* histograms = doc.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_NE(histograms->Find("serve/batch_size"), nullptr);
  const json::Value* counters = doc.Find("counters");
  EXPECT_EQ(counters->Find("serve/queries")->number(),
            static_cast<double>(kQueries));
  // Micro-batching must have coalesced the pipelined requests: strictly
  // fewer flushes than requests.
  EXPECT_LT(counters->Find("serve/batches")->number(),
            static_cast<double>(kQueries / kPerRequest));
}

TEST(ServeTest, MalformedRequestsAreStatusErrorsNotFatal) {
  const std::string dir = TempDir();
  const std::string ckpt = WriteCheckpoint(dir, 50, 8, 11);
  ServeProcess server({"--checkpoint=" + ckpt, "--source=exact", "--k=3"});
  server.ReadJson();  // hello

  const auto expect_error = [&](const std::string& request,
                                const std::string& needle) {
    server.Send(request);
    const json::Value response = server.ReadJson();
    ASSERT_TRUE(response.Find("ok") != nullptr) << request;
    EXPECT_FALSE(response.Find("ok")->bool_value()) << request;
    const std::string& error = response.Find("error")->string_value();
    EXPECT_NE(error.find(needle), std::string::npos)
        << request << " -> " << error;
  };
  expect_error("this is not json", "InvalidArgument");
  expect_error("[1,2,3]", "InvalidArgument");
  expect_error("{\"op\":\"topk\"}", "rows");
  expect_error("{\"op\":\"topk\",\"rows\":[[1,2]]}", "dim");
  expect_error("{\"op\":\"topk\",\"rows\":[[1,2,3,4,5,6,7,\"x\"]]}",
               "numbers");
  expect_error("{\"op\":\"topk\",\"k\":0,\"rows\":[[0,0,0,0,0,0,0,0]]}",
               "\"k\"");
  expect_error("{\"op\":\"frobnicate\"}", "unknown op");
  expect_error("{\"rows\":[[0,0,0,0,0,0,0,0]]}", "op");

  // The session survives all of it: a well-formed request still answers.
  server.Send("{\"op\":\"ping\",\"id\":7}");
  const json::Value pong = server.ReadJson();
  EXPECT_TRUE(pong.Find("ok")->bool_value());
  EXPECT_EQ(pong.Find("event")->string_value(), "pong");
  server.CloseInput();
  const int status = server.Wait();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeTest, FingerprintMismatchIsRejected) {
  const std::string dir = TempDir();
  const std::string ckpt = WriteCheckpoint(dir, 50, 8, 13);
  ServeProcess server({"--checkpoint=" + ckpt, "--source=exact", "--k=3"});
  const json::Value hello = server.ReadJson();
  const std::string fingerprint = hello.Find("fingerprint")->string_value();
  ASSERT_EQ(fingerprint.size(), 16u);

  // A client pinned to a different model revision must get
  // FailedPrecondition, not silently-wrong neighbours.
  server.Send(
      "{\"op\":\"topk\",\"id\":1,\"fingerprint\":\"0123456789abcdef\","
      "\"rows\":[[0,0,0,0,0,0,0,0]]}");
  const json::Value rejected = server.ReadJson();
  EXPECT_FALSE(rejected.Find("ok")->bool_value());
  EXPECT_NE(rejected.Find("error")->string_value().find("FailedPrecondition"),
            std::string::npos);
  EXPECT_NE(rejected.Find("error")->string_value().find(fingerprint),
            std::string::npos);

  // The correct fingerprint passes.
  server.Send("{\"op\":\"topk\",\"id\":2,\"fingerprint\":\"" + fingerprint +
              "\",\"rows\":[[0.5,0.1,0,0,0,0,0,0.2]]}");
  const json::Value accepted = server.ReadJson();
  EXPECT_TRUE(accepted.Find("ok")->bool_value());
  server.CloseInput();
  server.Wait();
}

TEST(ServeTest, AnnSourceServesAndReportsIndex) {
  const std::string dir = TempDir();
  const std::string ckpt = WriteCheckpoint(dir, 300, 16, 17);
  ServeProcess server({"--checkpoint=" + ckpt, "--source=ann_ivf",
                       "--nprobe=6", "--k=4"});
  const json::Value hello = server.ReadJson();
  EXPECT_EQ(hello.Find("source")->string_value(), "ann_ivf");

  Rng rng(5);
  math::Matrix queries(8, 16);
  queries.FillUniform(rng, 1.0f);
  server.Send("{\"op\":\"topk\",\"id\":0,\"rows\":" + RowsJson(queries, 0, 8) +
              "}");
  const json::Value response = server.ReadJson();
  ASSERT_TRUE(response.Find("ok")->bool_value());
  const auto& ids = response.Find("ids")->array();
  ASSERT_EQ(ids.size(), 8u);
  for (const auto& row : ids) {
    ASSERT_EQ(row.array().size(), 4u);
    EXPECT_GE(row.array()[0].number(), 0) << "empty top-1 from ANN index";
  }
  server.CloseInput();
  server.Wait();
}

TEST(ServeTest, ServesBenchCvCheckpointFoldModel) {
  // The offline-train -> online-serve loop end to end: a tiny checkpointed
  // cross-validation leaves a CV checkpoint behind, and align-serve serves
  // its fold-0 target embeddings directly.
  const std::string dir = TempDir();
  const auto dataset = core::BuildBenchmarkDataset(
      datagen::HeterogeneityProfile::EnFr(),
      core::ScalePreset{"tiny", 500, 250, 25.0}, false, 5);
  core::TrainConfig config;
  config.dim = 16;
  config.max_epochs = 2;
  config.seed = 7;
  config.threads = 1;
  core::CheckpointConfig ckpt;
  ckpt.directory = dir;
  core::RunCrossValidation("MTransE", dataset, config, /*num_folds=*/1, ckpt);

  std::string ckpt_path;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name.size() > 5 && name.rfind(".ckpt") == name.size() - 5) {
        ckpt_path = dir + "/" + name;
      }
    }
    ::closedir(d);
  }
  ASSERT_FALSE(ckpt_path.empty()) << "CV run left no checkpoint in " << dir;

  const auto fold = core::LoadCvFoldModel(ckpt_path);
  ASSERT_TRUE(fold.ok()) << fold.status().ToString();

  ServeProcess server({"--checkpoint=" + ckpt_path, "--source=exact",
                       "--k=3"});
  const json::Value hello = server.ReadJson();
  ASSERT_NE(hello.Find("event"), nullptr);
  EXPECT_EQ(hello.Find("event")->string_value(), "ready");
  // Default --table=1 serves the target-KG (emb2) side.
  EXPECT_EQ(static_cast<size_t>(hello.Find("targets")->number()),
            fold->emb2.rows());
  EXPECT_EQ(hello.Find("epoch")->number(), 0.0);

  // One lookup, bit-identical to a local exact source over emb2.
  align::CandidateSourceConfig exact_config;
  auto exact = align::CreateCandidateSourceOrDie(exact_config);
  math::Matrix targets = fold->emb2;
  ASSERT_TRUE(exact->Index(targets).ok());
  Rng rng(3);
  math::Matrix queries(2, fold->emb2.cols());
  queries.FillUniform(rng, 1.0f);
  const align::TopKResult truth = exact->TopK(queries, 3);

  server.Send("{\"op\":\"topk\",\"id\":0,\"rows\":" +
              RowsJson(queries, 0, 2) + "}");
  const json::Value response = server.ReadJson();
  ASSERT_TRUE(response.Find("ok")->bool_value())
      << response.Find("error")->string_value();
  const auto& ids = response.Find("ids")->array();
  const auto& scores = response.Find("scores")->array();
  for (size_t r = 0; r < 2; ++r) {
    const auto want = truth.Row(r);
    for (size_t t = 0; t < 3; ++t) {
      EXPECT_EQ(static_cast<int>(ids[r].array()[t].number()), want[t].index);
      EXPECT_EQ(scores[r].array()[t].number(),
                static_cast<double>(want[t].value));
    }
  }
  server.CloseInput();
  const int status = server.Wait();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeTest, DeadlineExceededIsExplicitStatusAndCounted) {
  const std::string dir = TempDir();
  const std::string ckpt = WriteCheckpoint(dir, 50, 8, 23);
  const std::string json_path = dir + "/BENCH_align_serve_deadline.json";
  // 100 nanoseconds: every request deterministically exceeds the deadline
  // by the time the batcher flushes it, so graceful degradation is exercised
  // on every response.
  ServeProcess server({"--checkpoint=" + ckpt, "--source=exact", "--k=3",
                       "--deadline-ms=0.0001", "--json=" + json_path});
  server.ReadJson();  // hello

  constexpr int kRequests = 3;
  for (int i = 0; i < kRequests; ++i) {
    server.Send("{\"op\":\"topk\",\"id\":" + std::to_string(i) +
                ",\"rows\":[[0.5,0.1,0,0,0,0,0,0.2]]}");
    const json::Value response = server.ReadJson();
    ASSERT_NE(response.Find("ok"), nullptr);
    EXPECT_FALSE(response.Find("ok")->bool_value());
    EXPECT_EQ(static_cast<int>(response.Find("id")->number()), i);
    const std::string& error = response.Find("error")->string_value();
    EXPECT_NE(error.find("DeadlineExceeded"), std::string::npos) << error;
    EXPECT_NE(error.find("deadline"), std::string::npos) << error;
    EXPECT_EQ(response.Find("ids"), nullptr)
        << "deadline-exceeded response must not carry partial results";
  }

  // Graceful degradation, not a crash: control ops still answer and the
  // session shuts down cleanly.
  server.Send("{\"op\":\"ping\",\"id\":7}");
  const json::Value pong = server.ReadJson();
  EXPECT_TRUE(pong.Find("ok")->bool_value());
  server.CloseInput();
  const int status = server.Wait();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  json::Value doc;
  ASSERT_TRUE(json::ReadFile(json_path, &doc).ok());
  const json::Value* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("serve/deadline_exceeded"), nullptr);
  EXPECT_EQ(counters->Find("serve/deadline_exceeded")->number(),
            static_cast<double>(kRequests));
  ASSERT_NE(counters->Find("serve/errors"), nullptr);
  EXPECT_GE(counters->Find("serve/errors")->number(),
            static_cast<double>(kRequests));
}

TEST(ServeTest, BadCheckpointOrConfigFailsStartup) {
  {
    ServeProcess server({"--checkpoint=/nonexistent/model.ckpt"});
    server.CloseInput();
    const int status = server.Wait();
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 1);
  }
  {
    const std::string dir = TempDir();
    const std::string ckpt = WriteCheckpoint(dir, 20, 8, 19);
    // Table index beyond the checkpoint's two tables.
    ServeProcess server({"--checkpoint=" + ckpt, "--table=5"});
    server.CloseInput();
    const int status = server.Wait();
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 1);
  }
}

TEST(ModelFingerprintTest, SensitiveToValuesAndShape) {
  Rng rng(1);
  checkpoint::TrainState state;
  state.tables.emplace_back(10, 4, math::InitScheme::kUniform, rng);
  const std::string base = ModelFingerprint(state);
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(base, ModelFingerprint(state));  // Deterministic.

  checkpoint::TrainState other = state;
  other.tables[0].MutableData()[0] += 1.0f;
  EXPECT_NE(base, ModelFingerprint(other));

  checkpoint::TrainState epoch_bump = state;
  epoch_bump.epoch = 9;
  EXPECT_NE(base, ModelFingerprint(epoch_bump));
}

}  // namespace
}  // namespace openea::serve
