// Tests for the deterministic fault-injection registry (src/common/fault.h)
// and the numerical-health guards (src/common/health.h): hit counting and
// n-th-hit firing, flag parsing, NaN injection, divergence and non-finite
// verdicts, and the thread-local scoped monitor the epoch trainers report
// to.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fault.h"
#include "src/common/health.h"

namespace openea {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::DisarmAll(); }
  void TearDown() override { fault::DisarmAll(); }
};

TEST_F(FaultTest, InertPointNeverFires) {
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(FAULT_POINT("never/armed"));
  }
  EXPECT_EQ(fault::FiredCount("never/armed"), 0u);
}

TEST_F(FaultTest, FiresExactlyOnNthHit) {
  fault::Spec spec;
  spec.point = "t/nth";
  spec.hit = 3;
  fault::Arm(spec);
  EXPECT_FALSE(fault::Hit("t/nth"));
  EXPECT_FALSE(fault::Hit("t/nth"));
  EXPECT_TRUE(fault::Hit("t/nth"));
  EXPECT_FALSE(fault::Hit("t/nth"));  // Not repeat: fires once.
  EXPECT_EQ(fault::HitCount("t/nth"), 4u);
  EXPECT_EQ(fault::FiredCount("t/nth"), 1u);
}

TEST_F(FaultTest, RepeatFiresOnEveryHitFromN) {
  fault::Spec spec;
  spec.point = "t/repeat";
  spec.hit = 2;
  spec.repeat = true;
  fault::Arm(spec);
  EXPECT_FALSE(fault::Hit("t/repeat"));
  EXPECT_TRUE(fault::Hit("t/repeat"));
  EXPECT_TRUE(fault::Hit("t/repeat"));
  EXPECT_EQ(fault::FiredCount("t/repeat"), 2u);
}

TEST_F(FaultTest, DisarmStopsFiring) {
  fault::Spec spec;
  spec.point = "t/disarm";
  spec.repeat = true;
  fault::Arm(spec);
  EXPECT_TRUE(fault::Hit("t/disarm"));
  fault::Disarm("t/disarm");
  EXPECT_FALSE(fault::Hit("t/disarm"));
}

TEST_F(FaultTest, ArmFromFlagParsesAllForms) {
  ASSERT_TRUE(fault::ArmFromFlag("a/b:1").ok());
  ASSERT_TRUE(fault::ArmFromFlag("a/c:5:kill").ok());
  ASSERT_TRUE(fault::ArmFromFlag("a/d:2:fail:repeat").ok());
  EXPECT_FALSE(fault::ArmFromFlag("").ok());
  EXPECT_FALSE(fault::ArmFromFlag("nohit").ok());
  EXPECT_FALSE(fault::ArmFromFlag("a/b:0").ok());          // 1-based.
  EXPECT_FALSE(fault::ArmFromFlag("a/b:x").ok());          // Not a number.
  EXPECT_FALSE(fault::ArmFromFlag("a/b:1:explode").ok());  // Unknown action.
  // The well-formed ones actually fire.
  EXPECT_TRUE(fault::Hit("a/b"));
}

TEST_F(FaultTest, InjectNaNPoisonsEveryElement) {
  std::vector<float> values = {1.0f, -2.0f, 3.0f};
  fault::InjectNaN(values);
  for (float v : values) EXPECT_TRUE(std::isnan(v));
}

TEST(HealthMonitorTest, HealthyLossesStayHealthy) {
  health::HealthMonitor monitor;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(monitor.Observe(1.0 / (1 + i)), health::Verdict::kHealthy);
  }
  EXPECT_EQ(monitor.worst(), health::Verdict::kHealthy);
}

TEST(HealthMonitorTest, NonFiniteLossIsFlaggedImmediately) {
  health::HealthMonitor monitor;
  EXPECT_EQ(monitor.Observe(std::numeric_limits<double>::quiet_NaN()),
            health::Verdict::kNonFinite);
  EXPECT_EQ(monitor.worst(), health::Verdict::kNonFinite);
  health::HealthMonitor monitor2;
  EXPECT_EQ(monitor2.Observe(std::numeric_limits<double>::infinity()),
            health::Verdict::kNonFinite);
}

TEST(HealthMonitorTest, LossBlowupIsDivergence) {
  health::GuardConfig config;
  config.min_observations = 4;
  config.divergence_factor = 10.0;
  health::HealthMonitor monitor(config);
  for (int i = 0; i < 6; ++i) monitor.Observe(0.5);
  EXPECT_EQ(monitor.worst(), health::Verdict::kHealthy);
  EXPECT_EQ(monitor.Observe(50.0), health::Verdict::kDiverged);
  EXPECT_EQ(monitor.worst(), health::Verdict::kDiverged);
}

TEST(HealthMonitorTest, EarlyFluctuationBelowFloorIsNotDivergence) {
  // Near-zero early losses must not turn ordinary jitter into a verdict:
  // the comparison floor keeps 1e-8 -> 1e-5 from reading as a 1000x blowup.
  health::HealthMonitor monitor;
  for (int i = 0; i < 6; ++i) monitor.Observe(1e-8);
  EXPECT_EQ(monitor.Observe(1e-5), health::Verdict::kHealthy);
}

TEST(HealthMonitorTest, TooFewObservationsNeverDiverge) {
  health::GuardConfig config;
  config.min_observations = 4;
  health::HealthMonitor monitor(config);
  monitor.Observe(0.1);
  EXPECT_EQ(monitor.Observe(1e9), health::Verdict::kHealthy);
}

TEST(HealthMonitorTest, ObserveTensorFlagsNonFinite) {
  health::HealthMonitor monitor;
  const std::vector<float> good = {1.0f, 2.0f};
  EXPECT_EQ(monitor.ObserveTensor(good), health::Verdict::kHealthy);
  const std::vector<float> bad = {1.0f,
                                  std::numeric_limits<float>::quiet_NaN()};
  EXPECT_EQ(monitor.ObserveTensor(bad), health::Verdict::kNonFinite);
}

TEST(HealthMonitorTest, WorstOrdersVerdictsBySeverity) {
  using health::Verdict;
  EXPECT_EQ(health::Worst(Verdict::kHealthy, Verdict::kDiverged),
            Verdict::kDiverged);
  EXPECT_EQ(health::Worst(Verdict::kNonFinite, Verdict::kDiverged),
            Verdict::kNonFinite);
  EXPECT_STREQ(health::VerdictName(Verdict::kHealthy), "healthy");
  EXPECT_STREQ(health::VerdictName(Verdict::kDiverged), "diverged");
  EXPECT_STREQ(health::VerdictName(Verdict::kNonFinite), "non_finite");
}

TEST(ScopedHealthMonitorTest, ReportLossReachesActiveMonitorAndNests) {
  EXPECT_EQ(health::ActiveMonitor(), nullptr);
  // Without a monitor, only the free finiteness check runs.
  EXPECT_EQ(health::ReportLoss(1.0), health::Verdict::kHealthy);
  EXPECT_EQ(health::ReportLoss(std::numeric_limits<double>::infinity()),
            health::Verdict::kNonFinite);

  health::HealthMonitor outer;
  {
    health::ScopedHealthMonitor outer_scope(&outer);
    EXPECT_EQ(health::ActiveMonitor(), &outer);
    health::ReportLoss(0.5);
    {
      health::HealthMonitor inner;
      health::ScopedHealthMonitor inner_scope(&inner);
      EXPECT_EQ(health::ActiveMonitor(), &inner);
      health::ReportLoss(std::numeric_limits<double>::quiet_NaN());
      EXPECT_EQ(inner.worst(), health::Verdict::kNonFinite);
    }
    // Inner verdicts do not leak into the outer monitor.
    EXPECT_EQ(health::ActiveMonitor(), &outer);
    EXPECT_EQ(outer.worst(), health::Verdict::kHealthy);
    EXPECT_EQ(outer.observations(), 1u);
  }
  EXPECT_EQ(health::ActiveMonitor(), nullptr);
}

}  // namespace
}  // namespace openea
