#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/approaches/imuse.h"
#include "src/approaches/mtranse.h"
#include "src/core/benchmark.h"
#include "src/core/registry.h"
#include "src/datagen/kg_pair.h"
#include "src/eval/folds.h"
#include "src/eval/metrics.h"

namespace openea::approaches {
namespace {

/// Shared small task so the whole suite stays fast: one EN-FR pair, one
/// fold, ~300 entities.
struct SharedTask {
  datagen::DatasetPair pair;
  core::AlignmentTask task;

  SharedTask() {
    datagen::SyntheticKgConfig config;
    config.num_entities = 300;
    config.avg_degree = 6.0;
    config.num_relations = 15;
    config.num_attributes = 12;
    config.vocabulary_size = 150;
    config.seed = 77;
    pair = GenerateDatasetPair(config,
                               datagen::HeterogeneityProfile::EnFr(), 77);
    const auto folds = eval::MakeFolds(pair.reference, 5, 0.1, 3);
    task.kg1 = &pair.kg1;
    task.kg2 = &pair.kg2;
    task.train = folds[0].train;
    task.valid = folds[0].valid;
    task.test = folds[0].test;
    task.dictionary = &pair.dictionary;
  }
};

const SharedTask& GetSharedTask() {
  static const SharedTask* shared = new SharedTask();
  return *shared;
}

class ApproachTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ApproachTest, TrainsAndBeatsRandomBaseline) {
  core::TrainConfig config;
  config.dim = 16;
  config.max_epochs = 60;
  config.seed = 1;
  auto approach = core::CreateApproachOrDie(GetParam(), config);
  ASSERT_NE(approach, nullptr);
  EXPECT_EQ(approach->name(), GetParam());

  const auto& shared = GetSharedTask();
  const core::AlignmentModel model = approach->Train(shared.task);
  EXPECT_EQ(model.emb1.rows(), shared.pair.kg1.NumEntities());
  EXPECT_EQ(model.emb2.rows(), shared.pair.kg2.NumEntities());
  EXPECT_EQ(model.emb1.cols(), model.emb2.cols());
  for (float v : model.emb1.Data()) ASSERT_TRUE(std::isfinite(v));

  const auto metrics = eval::EvaluateRanking(
      model, shared.task.test, align::DistanceMetric::kCosine);
  // Random baseline Hits@1 is 1/|test| (~0.6%); every approach must beat
  // it several times over even with this tiny budget (RSN4EA is the
  // slowest learner and sets the floor).
  EXPECT_GT(metrics.hits1, 0.02) << GetParam();
  EXPECT_GE(metrics.hits5, metrics.hits1);
  EXPECT_GE(metrics.mrr, metrics.hits1);
  // The literal-based leaders should already be strong (Table 5 top-3).
  if (GetParam() == "MultiKE" || GetParam() == "RDGCN") {
    EXPECT_GT(metrics.hits1, 0.3) << GetParam();
  }
}

TEST_P(ApproachTest, RequirementsDeclareSeedAlignment) {
  core::TrainConfig config;
  auto approach = core::CreateApproachOrDie(GetParam(), config);
  ASSERT_NE(approach, nullptr);
  // All 12 embedding-based approaches are (semi-)supervised (Table 9).
  EXPECT_EQ(approach->requirements().pre_aligned_entities,
            core::Requirement::kMandatory);
}

INSTANTIATE_TEST_SUITE_P(All12, ApproachTest,
                         ::testing::ValuesIn(core::ApproachNames()),
                         [](const auto& info) { return info.param; });

TEST(RegistryTest, UnknownNameReturnsNotFoundListingValidNames) {
  core::TrainConfig config;
  const auto made = core::CreateApproach("NoSuchApproach", config);
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.status().code(), StatusCode::kNotFound);
  // The error must name the valid approaches so the caller can self-serve.
  EXPECT_NE(made.status().message().find("NoSuchApproach"),
            std::string::npos);
  for (const auto& name : core::ApproachNames()) {
    EXPECT_NE(made.status().message().find(name), std::string::npos) << name;
  }
}

TEST(RegistryTest, InvalidConfigRejectedBeforeLookup) {
  core::TrainConfig config;
  config.dim = 0;
  const auto made = core::CreateApproach("MTransE", config);
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.status().code(), StatusCode::kInvalidArgument);

  core::TrainConfig bad_epochs;
  bad_epochs.max_epochs = 0;
  EXPECT_FALSE(core::CreateApproach("MTransE", bad_epochs).ok());
  core::TrainConfig bad_eval;
  bad_eval.eval_every = -1;
  EXPECT_FALSE(core::CreateApproach("MTransE", bad_eval).ok());
  core::TrainConfig bad_threads;
  bad_threads.threads = -2;
  EXPECT_FALSE(core::CreateApproach("MTransE", bad_threads).ok());
}

TEST(RegistryTest, TrainConfigValidateAcceptsDefaults) {
  EXPECT_TRUE(core::TrainConfig{}.Validate().ok());
  core::TrainConfig all_hardware;
  all_hardware.threads = 0;  // 0 = all hardware threads is valid.
  EXPECT_TRUE(all_hardware.Validate().ok());
}

TEST(RegistryTest, RegisterHookExtendsTheFactoryTable) {
  const std::string name = "RegistryTestCustomApproach";
  ASSERT_TRUE(core::RegisterApproach(name, [](const core::TrainConfig& c) {
    return std::make_unique<MTransE>(c);
  }));
  // Second registration under the same name is rejected.
  EXPECT_FALSE(core::RegisterApproach(name, [](const core::TrainConfig& c) {
    return std::make_unique<MTransE>(c);
  }));
  const auto registered = core::RegisteredApproachNames();
  EXPECT_NE(std::find(registered.begin(), registered.end(), name),
            registered.end());
  core::TrainConfig config;
  config.dim = 16;
  auto made = core::CreateApproach(name, config);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  EXPECT_EQ(made.value()->name(), "MTransE");
}

TEST(RegistryTest, RegisteredNamesIncludePaperTwelveAndChassis) {
  const auto registered = core::RegisteredApproachNames();
  for (const auto& name : core::ApproachNames()) {
    EXPECT_NE(std::find(registered.begin(), registered.end(), name),
              registered.end())
        << name;
  }
  EXPECT_NE(std::find(registered.begin(), registered.end(),
                      std::string("MTransE-RotatE")),
            registered.end());
}

TEST(RegistryTest, UnexploredModelChassis) {
  core::TrainConfig config;
  config.dim = 16;
  for (const char* name :
       {"MTransE-TransH", "MTransE-TransD", "MTransE-RotatE",
        "MTransE-SimplE", "MTransE-ProjE", "MTransE-ConvE",
        "MTransE-TransR", "MTransE-HolE", "MTransE-DistMult"}) {
    auto approach = core::CreateApproachOrDie(name, config);
    ASSERT_NE(approach, nullptr) << name;
    EXPECT_EQ(approach->name(), name);
  }
}

TEST(SemiSupervisedTest, TracesAreRecorded) {
  core::TrainConfig config;
  config.dim = 16;
  config.max_epochs = 60;
  for (const char* name : {"BootEA", "IPTransE", "KDCoE"}) {
    auto approach = core::CreateApproachOrDie(name, config);
    const core::AlignmentModel model = approach->Train(GetSharedTask().task);
    EXPECT_FALSE(model.semi_supervised_trace.empty()) << name;
    for (const auto& stat : model.semi_supervised_trace) {
      EXPECT_GE(stat.precision, 0.0);
      EXPECT_LE(stat.precision, 1.0);
      EXPECT_GE(stat.recall, 0.0);
      EXPECT_LE(stat.recall, 1.0);
    }
  }
}

TEST(AblationTest, AttributeSwitchChangesLiteralApproaches) {
  // Figure 6: disabling attribute embedding must hurt the literal-based
  // approaches on this dataset.
  core::TrainConfig with_attr;
  with_attr.dim = 16;
  with_attr.max_epochs = 40;
  core::TrainConfig without_attr = with_attr;
  without_attr.use_attributes = false;

  const auto& shared = GetSharedTask();
  for (const char* name : {"MultiKE", "RDGCN"}) {
    const double h1_with =
        eval::EvaluateRanking(
            core::CreateApproachOrDie(name, with_attr)->Train(shared.task),
            shared.task.test, align::DistanceMetric::kCosine)
            .hits1;
    const double h1_without =
        eval::EvaluateRanking(
            core::CreateApproachOrDie(name, without_attr)->Train(shared.task),
            shared.task.test, align::DistanceMetric::kCosine)
            .hits1;
    EXPECT_GT(h1_with, h1_without) << name;
  }
}

TEST(ImuseHarvestTest, LiteralPairsAreMostlyCorrect) {
  const auto& shared = GetSharedTask();
  const kg::Alignment harvested = Imuse::HarvestLiteralPairs(shared.task);
  EXPECT_GT(harvested.size(), 10u);
  const auto prf = eval::ComparePairs(harvested, shared.pair.reference);
  // Mostly right but imperfect — the error source the paper discusses.
  EXPECT_GT(prf.precision, 0.5);
}

TEST(BenchmarkSuiteTest, BuildsDatasetsAndRunsFolds) {
  core::ScalePreset tiny{"tiny", 500, 250, 25.0};
  const auto dataset = core::BuildBenchmarkDataset(
      datagen::HeterogeneityProfile::DbpYg(), tiny, false, 5);
  EXPECT_LE(dataset.pair.kg1.NumEntities(), 250u);
  EXPECT_GE(dataset.pair.kg1.NumEntities(), 240u);
  EXPECT_EQ(dataset.name, "D-Y-tiny (V1)");

  core::TrainConfig config;
  config.dim = 16;
  config.max_epochs = 30;
  const auto result =
      core::RunCrossValidation("MTransE", dataset, config, 2);
  EXPECT_EQ(result.approach, "MTransE");
  EXPECT_GE(result.hits1.mean, 0.0);
  EXPECT_LE(result.hits1.mean, 1.0);
  EXPECT_GT(result.mean_seconds, 0.0);
  EXPECT_EQ(result.first_fold_model.emb1.rows(),
            dataset.pair.kg1.NumEntities());
}

}  // namespace
}  // namespace openea::approaches
