#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/embedding/negative_sampling.h"
#include "src/embedding/translational.h"
#include "src/embedding/triple_model.h"
#include "src/math/vec.h"

namespace openea::embedding {
namespace {

constexpr size_t kEntities = 40;
constexpr size_t kRelations = 6;

/// A small deterministic KG: a ring plus some chords, so every entity has
/// structure to learn.
std::vector<kg::Triple> MakeTriples() {
  std::vector<kg::Triple> triples;
  for (size_t e = 0; e < kEntities; ++e) {
    triples.push_back({static_cast<kg::EntityId>(e),
                       static_cast<kg::RelationId>(e % kRelations),
                       static_cast<kg::EntityId>((e + 1) % kEntities)});
    triples.push_back({static_cast<kg::EntityId>(e),
                       static_cast<kg::RelationId>((e + 2) % kRelations),
                       static_cast<kg::EntityId>((e + 7) % kEntities)});
  }
  return triples;
}

/// Trains `model` for a few epochs and returns the fraction of positive
/// triples whose score beats a fixed corrupted counterpart. Every
/// implemented model must learn to discriminate on this toy KG.
double TrainAndMeasure(TripleModel& model, int epochs, uint64_t seed) {
  const auto triples = MakeTriples();
  Rng rng(seed);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const kg::Triple& pos : triples) {
      const kg::Triple neg = CorruptUniform(pos, kEntities, rng);
      model.TrainOnPair(pos, neg);
    }
    model.PostEpoch();
  }
  // Discrimination check with fresh corruptions: the model's own score of a
  // true triple should beat that of a corrupted one.
  Rng check_rng(seed ^ 0x1234);
  size_t wins = 0, total = 0;
  for (const kg::Triple& pos : triples) {
    const float score_true = model.ScoreTriple(pos);
    for (int k = 0; k < 4; ++k) {
      const kg::Triple neg = CorruptUniform(pos, kEntities, check_rng);
      if (score_true >= model.ScoreTriple(neg)) ++wins;
      ++total;
    }
  }
  return static_cast<double>(wins) / static_cast<double>(total);
}

class TripleModelTest : public ::testing::TestWithParam<TripleModelKind> {};

TEST_P(TripleModelTest, LearnsToDiscriminateOnToyKg) {
  Rng rng(7);
  TripleModelOptions options;
  options.dim = 16;
  options.learning_rate = 0.1f;
  options.margin = 1.0f;
  auto model =
      CreateTripleModel(GetParam(), kEntities, kRelations, options, rng);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->num_entities(), kEntities);
  EXPECT_EQ(model->dim(), options.dim);
  const double accuracy = TrainAndMeasure(*model, 150, 5);
  // True triples should outscore corruptions far more often than chance.
  EXPECT_GT(accuracy, 0.75) << model->name();
}

TEST_P(TripleModelTest, TrainingChangesEmbeddings) {
  Rng rng(7);
  TripleModelOptions options;
  options.dim = 16;
  auto model =
      CreateTripleModel(GetParam(), kEntities, kRelations, options, rng);
  std::vector<float> before(model->EntityEmbedding(0).begin(),
                            model->EntityEmbedding(0).end());
  TrainAndMeasure(*model, 3, 5);
  std::vector<float> after(model->EntityEmbedding(0).begin(),
                           model->EntityEmbedding(0).end());
  EXPECT_NE(before, after) << model->name();
}

TEST_P(TripleModelTest, EmbeddingsStayFinite) {
  Rng rng(7);
  TripleModelOptions options;
  options.dim = 16;
  options.learning_rate = 0.5f;  // Aggressive on purpose.
  auto model =
      CreateTripleModel(GetParam(), kEntities, kRelations, options, rng);
  TrainAndMeasure(*model, 30, 5);
  for (size_t e = 0; e < kEntities; ++e) {
    for (float v : model->EntityEmbedding(static_cast<kg::EntityId>(e))) {
      EXPECT_TRUE(std::isfinite(v)) << model->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TripleModelTest,
    ::testing::Values(TripleModelKind::kTransE, TripleModelKind::kTransH,
                      TripleModelKind::kTransR, TripleModelKind::kTransD,
                      TripleModelKind::kHolE, TripleModelKind::kSimplE,
                      TripleModelKind::kComplEx,
                      TripleModelKind::kRotatE, TripleModelKind::kDistMult,
                      TripleModelKind::kProjE, TripleModelKind::kConvE),
    [](const ::testing::TestParamInfo<TripleModelKind>& info) {
      return TripleModelKindName(info.param);
    });

TEST(TransENoNegativesTest, PositiveOnlyTrainingCollapsesTowardLowEnergy) {
  Rng rng(7);
  TripleModelOptions options;
  options.dim = 16;
  TransEModel model(kEntities, kRelations, options, rng);
  const auto triples = MakeTriples();
  float first_epoch_loss = 0, last_epoch_loss = 0;
  for (int epoch = 0; epoch < 30; ++epoch) {
    float total = 0;
    for (const auto& t : triples) total += model.TrainOnPositive(t);
    model.PostEpoch();
    if (epoch == 0) first_epoch_loss = total;
    last_epoch_loss = total;
  }
  EXPECT_LT(last_epoch_loss, first_epoch_loss);
}

TEST(LimitLossTest, PushesPositiveEnergyBelowLimit) {
  Rng rng(7);
  TripleModelOptions options;
  options.dim = 16;
  options.learning_rate = 0.1f;
  TransEModel::LimitLoss limit;
  limit.enabled = true;
  limit.limit_pos = 0.2f;
  limit.limit_neg = 2.0f;
  TransEModel model(kEntities, kRelations, options, rng, limit);
  const double acc = TrainAndMeasure(model, 60, 5);
  EXPECT_GT(acc, 0.62);
}

TEST(NegativeSamplingTest, UniformCorruptsExactlyOneSlot) {
  Rng rng(3);
  const kg::Triple pos{5, 2, 9};
  for (int i = 0; i < 100; ++i) {
    const kg::Triple neg = CorruptUniform(pos, kEntities, rng);
    EXPECT_EQ(neg.relation, pos.relation);
    const bool head_changed = neg.head != pos.head;
    const bool tail_changed = neg.tail != pos.tail;
    EXPECT_FALSE(head_changed && tail_changed);
  }
}

TEST(NegativeSamplingTest, TruncatedSamplesFromNeighborhood) {
  Rng rng(3);
  math::EmbeddingTable table(20, 8, math::InitScheme::kUnit, rng);
  TruncatedNegativeSampler sampler(4);
  EXPECT_FALSE(sampler.initialized());
  sampler.Refresh(table);
  EXPECT_TRUE(sampler.initialized());
  const kg::Triple pos{0, 0, 1};
  // Every corruption must replace head or tail with one of the victim's 4
  // nearest neighbours.
  for (int i = 0; i < 50; ++i) {
    const kg::Triple neg = sampler.Corrupt(pos, 20, rng);
    const bool head_changed = neg.head != pos.head;
    const kg::EntityId victim = head_changed ? pos.head : pos.tail;
    const kg::EntityId replacement = head_changed ? neg.head : neg.tail;
    const float sim = math::CosineSimilarity(table.Row(victim),
                                             table.Row(replacement));
    // The replacement is among the nearest: it should beat most entities.
    size_t beaten = 0;
    for (size_t e = 0; e < 20; ++e) {
      if (static_cast<kg::EntityId>(e) == victim) continue;
      if (sim >= math::CosineSimilarity(table.Row(victim),
                                        table.Row(static_cast<int>(e)))) {
        ++beaten;
      }
    }
    EXPECT_GE(beaten, 15u);
  }
}

}  // namespace
}  // namespace openea::embedding
