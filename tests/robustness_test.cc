// Robustness-workload suite (ctest label: robustness): seed-noise
// corruption of the reference alignment, dangling ground truth, and the
// abstention-aware evaluation (DESIGN.md, "Robustness workload").
//
// The determinism tests pin the PR's contract — the corruption realization
// and the abstention P/R/F1 at a fixed threshold are bit-identical at 1 and
// 8 threads. The hand-computed fixtures pin the scoring semantics
// (prediction on a dangling query is a false positive, abstention on a
// matchable query is a miss), including the all-dangling and
// zero-threshold edge cases. The end-to-end test forks the real
// bench_robustness binary and validates its --json telemetry with the
// bench schema validator.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/parallel.h"
#include "src/core/benchmark.h"
#include "src/core/task.h"
#include "src/datagen/kg_pair.h"
#include "src/eval/metrics.h"
#include "src/common/rng.h"
#include "src/kg/types.h"
#include "src/math/matrix.h"

#ifndef OPENEA_BENCH_ROBUSTNESS
#error "OPENEA_BENCH_ROBUSTNESS must point at the bench_robustness binary"
#endif
#ifndef OPENEA_VALIDATE_BENCH_JSON
#error "OPENEA_VALIDATE_BENCH_JSON must point at validate_bench_json"
#endif

namespace openea {
namespace {

datagen::DatasetPair NoisyPair(double noise, double dangling, uint64_t seed) {
  datagen::SyntheticKgConfig source;
  source.num_entities = 250;
  source.avg_degree = 5.0;
  source.num_relations = 15;
  source.num_attributes = 10;
  source.vocabulary_size = 150;
  source.seed = seed;
  datagen::HeterogeneityProfile profile;
  profile.seed_noise_rate = noise;
  profile.dangling_fraction = dangling;
  return datagen::GenerateDatasetPair(source, profile, seed);
}

bool SameAlignment(const kg::Alignment& a, const kg::Alignment& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].left != b[i].left || a[i].right != b[i].right) return false;
  }
  return true;
}

TEST(SeedCorruptionTest, RecordsVerifyAgainstGroundTruth) {
  datagen::DatasetPair pair = NoisyPair(0.3, 0.0, 17);
  ASSERT_EQ(pair.noisy_reference.size(), pair.reference.size());
  ASSERT_FALSE(pair.corruptions.empty());
  ASSERT_LT(pair.corruptions.size(), pair.reference.size());

  // Each record names a corrupted index: clean matches the reference, the
  // noisy right differs, and the left side is never touched.
  std::vector<bool> corrupted(pair.reference.size(), false);
  size_t prev_plus_1 = 0;  // Records arrive in ascending index order.
  for (const datagen::SeedCorruption& c : pair.corruptions) {
    ASSERT_LT(c.index, pair.reference.size());
    ASSERT_GE(c.index + 1, prev_plus_1 + 1);
    prev_plus_1 = c.index + 1;
    corrupted[c.index] = true;
    EXPECT_EQ(c.clean.left, pair.reference[c.index].left);
    EXPECT_EQ(c.clean.right, pair.reference[c.index].right);
    EXPECT_EQ(pair.noisy_reference[c.index].left, c.clean.left);
    EXPECT_NE(pair.noisy_reference[c.index].right, c.clean.right);
  }
  // Every index without a record is untouched.
  for (size_t i = 0; i < pair.reference.size(); ++i) {
    if (corrupted[i]) continue;
    EXPECT_EQ(pair.noisy_reference[i].left, pair.reference[i].left);
    EXPECT_EQ(pair.noisy_reference[i].right, pair.reference[i].right);
  }

  // Kind-specific invariants.
  pair.kg2.BuildIndex();
  size_t swapped = 0, hard = 0, random_wrong = 0;
  for (const datagen::SeedCorruption& c : pair.corruptions) {
    const kg::EntityId noisy = pair.noisy_reference[c.index].right;
    switch (c.kind) {
      case datagen::SeedCorruption::Kind::kSwapped: {
        // Some other corrupted pair holds this pair's clean right, and this
        // pair holds its partner's.
        const auto partner = std::find_if(
            pair.corruptions.begin(), pair.corruptions.end(),
            [&](const datagen::SeedCorruption& other) {
              return other.index != c.index &&
                     pair.noisy_reference[other.index].right == c.clean.right;
            });
        ASSERT_NE(partner, pair.corruptions.end());
        EXPECT_EQ(noisy, partner->clean.right);
        ++swapped;
        break;
      }
      case datagen::SeedCorruption::Kind::kHardNegative: {
        const auto& neighbors = pair.kg2.Neighbors(c.clean.right);
        const bool is_neighbor = std::any_of(
            neighbors.begin(), neighbors.end(),
            [&](const kg::NeighborEdge& e) { return e.neighbor == noisy; });
        EXPECT_TRUE(is_neighbor)
            << "hard negative " << noisy << " is not a KG2 neighbour of "
            << c.clean.right;
        ++hard;
        break;
      }
      case datagen::SeedCorruption::Kind::kRandomWrong:
        EXPECT_LT(noisy, pair.kg2.NumEntities());
        ++random_wrong;
        break;
    }
  }
  // At 30% over ~hundreds of pairs, all three modes must be realized.
  EXPECT_GT(swapped, 0u);
  EXPECT_GT(hard, 0u);
  EXPECT_GT(random_wrong, 0u);
}

TEST(SeedCorruptionTest, ZeroRateIsIdentity) {
  const datagen::DatasetPair pair = NoisyPair(0.0, 0.0, 21);
  EXPECT_TRUE(pair.corruptions.empty());
  EXPECT_TRUE(SameAlignment(pair.noisy_reference, pair.reference));
}

TEST(SeedCorruptionTest, RealizationBitIdenticalAcrossThreadCounts) {
  SetThreads(1);
  const datagen::DatasetPair one = NoisyPair(0.25, 0.15, 33);
  SetThreads(8);
  const datagen::DatasetPair eight = NoisyPair(0.25, 0.15, 33);
  SetThreads(1);

  EXPECT_TRUE(SameAlignment(one.reference, eight.reference));
  EXPECT_TRUE(SameAlignment(one.noisy_reference, eight.noisy_reference));
  ASSERT_EQ(one.corruptions.size(), eight.corruptions.size());
  for (size_t i = 0; i < one.corruptions.size(); ++i) {
    EXPECT_EQ(one.corruptions[i].index, eight.corruptions[i].index);
    EXPECT_EQ(one.corruptions[i].kind, eight.corruptions[i].kind);
  }
  EXPECT_EQ(one.dangling1, eight.dangling1);
  EXPECT_EQ(one.dangling2, eight.dangling2);
}

TEST(DanglingTest, GroundTruthSurfacedSortedAndDisjointFromReference) {
  const datagen::DatasetPair pair = NoisyPair(0.0, 0.1, 9);
  // unaligned_fraction (0.10 default) + dangling_fraction (0.10) privates.
  ASSERT_FALSE(pair.dangling1.empty());
  ASSERT_FALSE(pair.dangling2.empty());
  EXPECT_TRUE(std::is_sorted(pair.dangling1.begin(), pair.dangling1.end()));
  EXPECT_TRUE(std::is_sorted(pair.dangling2.begin(), pair.dangling2.end()));

  // Dangling entities live in the candidate pool but never in the truth.
  for (const kg::EntityId e : pair.dangling1) {
    ASSERT_LT(e, pair.kg1.NumEntities());
    for (const kg::AlignmentPair& p : pair.reference) {
      ASSERT_NE(p.left, e) << "dangling KG1 entity appears in the reference";
    }
  }
  for (const kg::EntityId e : pair.dangling2) {
    ASSERT_LT(e, pair.kg2.NumEntities());
    for (const kg::AlignmentPair& p : pair.reference) {
      ASSERT_NE(p.right, e) << "dangling KG2 entity appears in the reference";
    }
  }

  // The dangling knob adds on top of unaligned_fraction: every private
  // entity is surfaced, so each side carries roughly 20% of its KG.
  const double frac1 =
      static_cast<double>(pair.dangling1.size()) / pair.kg1.NumEntities();
  EXPECT_GT(frac1, 0.10);
  EXPECT_LT(frac1, 0.35);
}

TEST(DanglingTest, IdsSamplingDropsDanglingButKeepsCleanPipeline) {
  // IDS retains only reference entities by construction, so sampled
  // datasets must come out with empty robustness fields — the standard
  // pipeline is unchanged.
  const auto dataset = core::BuildBenchmarkDataset(
      datagen::HeterogeneityProfile::EnFr(),
      core::ScalePreset{"tiny", 500, 250, 25.0}, false, 5);
  EXPECT_TRUE(dataset.pair.dangling1.empty());
  EXPECT_TRUE(dataset.pair.dangling2.empty());
  EXPECT_TRUE(dataset.pair.corruptions.empty());
  EXPECT_TRUE(
      SameAlignment(dataset.pair.noisy_reference, dataset.pair.reference));
}

// ---- Abstention scoring fixtures -----------------------------------------

/// Two unit targets t0=(1,0), t1=(0,1); four queries:
///  q0=(1,0)    truth 0  -> top-1 t0 @ 1.0  (correct prediction)
///  q1=(.6,.8)  truth 1  -> top-1 t1 @ 0.8  (correct prediction)
///  q2=(1,0)    dangling -> top-1 t0 @ 1.0  (false positive)
///  q3=(-1,0)   dangling -> top-1 t1 @ 0.0  (abstains at threshold 0.5)
struct Fixture {
  math::Matrix queries{4, 2};
  math::Matrix targets{2, 2};
  std::vector<int> truth{0, 1, -1, -1};
  Fixture() {
    const float q[4][2] = {{1, 0}, {0.6f, 0.8f}, {1, 0}, {-1, 0}};
    const float t[2][2] = {{1, 0}, {0, 1}};
    for (int i = 0; i < 4; ++i)
      std::copy(q[i], q[i] + 2, queries.Row(i).begin());
    for (int i = 0; i < 2; ++i)
      std::copy(t[i], t[i] + 2, targets.Row(i).begin());
  }
};

TEST(AbstentionTest, HandComputedFixtureAtDefaultThreshold) {
  const Fixture f;
  eval::AbstentionOptions options;  // cosine, threshold 0.5
  const auto m =
      eval::EvaluateAbstention(f.queries, f.targets, f.truth, options);
  EXPECT_EQ(m.queries, 4u);
  EXPECT_EQ(m.matchable, 2u);
  EXPECT_EQ(m.dangling, 2u);
  EXPECT_EQ(m.predictions, 3u);  // q0, q1, q2 clear 0.5; q3 abstains.
  EXPECT_EQ(m.correct, 2u);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 2.0 * (2.0 / 3.0) / (2.0 / 3.0 + 1.0));
  EXPECT_DOUBLE_EQ(m.abstain_rate, 0.25);
  EXPECT_DOUBLE_EQ(m.dangling_recall, 0.5);  // q3 rejected, q2 not.
}

TEST(AbstentionTest, ZeroThresholdPredictsEverythingWithTies) {
  const Fixture f;
  eval::AbstentionOptions options;
  options.threshold = 0.0;
  // q3's top-1 similarity is exactly 0.0; the predict rule is >=, so even
  // the boundary query predicts — nothing abstains.
  const auto m =
      eval::EvaluateAbstention(f.queries, f.targets, f.truth, options);
  EXPECT_EQ(m.predictions, 4u);
  EXPECT_EQ(m.correct, 2u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.abstain_rate, 0.0);
  EXPECT_DOUBLE_EQ(m.dangling_recall, 0.0);
}

TEST(AbstentionTest, AllDanglingQueries) {
  const Fixture f;
  const std::vector<int> all_dangling = {-1, -1, -1, -1};
  eval::AbstentionOptions options;
  options.threshold = 2.0;  // Above any cosine: everything abstains.
  const auto m =
      eval::EvaluateAbstention(f.queries, f.targets, all_dangling, options);
  EXPECT_EQ(m.matchable, 0u);
  EXPECT_EQ(m.dangling, 4u);
  EXPECT_EQ(m.predictions, 0u);
  // Empty denominators are 0, never NaN.
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
  EXPECT_DOUBLE_EQ(m.abstain_rate, 1.0);
  EXPECT_DOUBLE_EQ(m.dangling_recall, 1.0);

  // At threshold -2 every dangling query predicts: precision collapses to 0
  // with predictions > 0, and f1 stays finite.
  options.threshold = -2.0;
  const auto predicted =
      eval::EvaluateAbstention(f.queries, f.targets, all_dangling, options);
  EXPECT_EQ(predicted.predictions, 4u);
  EXPECT_DOUBLE_EQ(predicted.precision, 0.0);
  EXPECT_DOUBLE_EQ(predicted.f1, 0.0);
  EXPECT_DOUBLE_EQ(predicted.dangling_recall, 0.0);
}

TEST(AbstentionTest, EmptyTaskIsAllZeros) {
  const math::Matrix queries(0, 2), targets(2, 2);
  const auto m = eval::EvaluateAbstention(queries, targets, {},
                                          eval::AbstentionOptions{});
  EXPECT_EQ(m.queries, 0u);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
  EXPECT_DOUBLE_EQ(m.abstain_rate, 0.0);
}

TEST(AbstentionTest, SweepMatchesPointEvaluationsAndIsMonotoneInAbstention) {
  // Model-level overload on a synthetic model: emb1 row i == emb2 row i for
  // matchable pairs, dangling rows point elsewhere.
  core::AlignmentModel model;
  model.emb1 = math::Matrix(6, 4);
  model.emb2 = math::Matrix(6, 4);
  Rng rng(77);
  model.emb1.FillUniform(rng, 1.0f);
  for (size_t i = 0; i < 6; ++i) {
    std::copy(model.emb1.Row(i).begin(), model.emb1.Row(i).end(),
              model.emb2.Row(i).begin());
  }
  kg::Alignment test_pairs;
  for (kg::EntityId i = 0; i < 4; ++i) test_pairs.push_back({i, i});
  const std::vector<kg::EntityId> dangling1 = {4, 5};
  const std::vector<kg::EntityId> dangling2 = {4};

  eval::AbstentionOptions options;
  const std::vector<double> thresholds = {0.0, 0.5, 0.9, 1.5};
  const auto curve = eval::SweepAbstentionThresholds(
      model, test_pairs, dangling1, dangling2, options, thresholds);
  ASSERT_EQ(curve.size(), thresholds.size());
  double prev_abstain = -1.0;
  for (size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].threshold, thresholds[i]);
    // Each sweep point equals an independent evaluation at that threshold.
    options.threshold = thresholds[i];
    const auto point = eval::EvaluateAbstention(model, test_pairs, dangling1,
                                                dangling2, options);
    EXPECT_EQ(curve[i].metrics.predictions, point.predictions);
    EXPECT_EQ(curve[i].metrics.correct, point.correct);
    EXPECT_DOUBLE_EQ(curve[i].metrics.f1, point.f1);
    // Raising the threshold can only abstain more.
    EXPECT_GE(curve[i].metrics.abstain_rate, prev_abstain);
    prev_abstain = curve[i].metrics.abstain_rate;
    EXPECT_EQ(curve[i].metrics.queries, 6u);
    EXPECT_EQ(curve[i].metrics.dangling, 2u);
  }
  // Identical embeddings score perfectly below threshold 1: all four
  // matchable queries hit their own row at similarity ~1.
  EXPECT_EQ(curve[1].metrics.correct, 4u);
  // Above any cosine, everything abstains.
  EXPECT_DOUBLE_EQ(curve[3].metrics.abstain_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve[3].metrics.dangling_recall, 1.0);
}

TEST(AbstentionTest, FixedThresholdBitIdenticalAcrossThreadCounts) {
  // The acceptance criterion: abstention P/R/F1 at a fixed threshold is
  // bit-identical at 1 and 8 threads, on a task large enough that the
  // similarity pass actually parallelizes.
  core::AlignmentModel model;
  Rng rng(123);
  model.emb1 = math::Matrix(600, 24);
  model.emb2 = math::Matrix(600, 24);
  model.emb1.FillUniform(rng, 1.0f);
  model.emb2.FillUniform(rng, 1.0f);
  kg::Alignment test_pairs;
  for (kg::EntityId i = 0; i < 450; ++i) test_pairs.push_back({i, i});
  std::vector<kg::EntityId> dangling1, dangling2;
  for (kg::EntityId i = 450; i < 600; ++i) {
    dangling1.push_back(i);
    dangling2.push_back(i);
  }
  eval::AbstentionOptions options;
  options.threshold = 0.35;

  SetThreads(1);
  const auto one = eval::EvaluateAbstention(model, test_pairs, dangling1,
                                            dangling2, options);
  SetThreads(8);
  const auto eight = eval::EvaluateAbstention(model, test_pairs, dangling1,
                                              dangling2, options);
  SetThreads(1);
  EXPECT_EQ(one.predictions, eight.predictions);
  EXPECT_EQ(one.correct, eight.correct);
  EXPECT_EQ(one.precision, eight.precision);  // Bitwise, not NEAR.
  EXPECT_EQ(one.recall, eight.recall);
  EXPECT_EQ(one.f1, eight.f1);
  EXPECT_EQ(one.abstain_rate, eight.abstain_rate);
  EXPECT_EQ(one.dangling_recall, eight.dangling_recall);
}

TEST(RobustnessCvTest, CorruptedSeedsReachTrainingButNotEvaluation) {
  core::BenchmarkDataset dataset;
  dataset.pair = NoisyPair(0.3, 0.1, 41);
  dataset.pair.name = "ROBUST";
  dataset.name = "ROBUST-test";
  core::TrainConfig config;
  config.dim = 16;
  config.max_epochs = 2;
  config.seed = 7;
  config.threads = 1;
  const auto result =
      core::RunCrossValidation("MTransE", dataset, config, /*num_folds=*/1);
  EXPECT_TRUE(result.has_abstention);
  // The clean-truth ranking metrics stay in range, and the abstention
  // aggregates are populated (possibly 0 for an untrained model, but never
  // NaN).
  EXPECT_GE(result.hits1.mean, 0.0);
  EXPECT_LE(result.hits1.mean, 1.0);
  EXPECT_EQ(result.abstention_f1.mean, result.abstention_f1.mean);
  EXPECT_GE(result.abstention_dangling_recall.mean, 0.0);
  EXPECT_LE(result.abstention_dangling_recall.mean, 1.0);

  // A clean dataset must not grow abstention aggregates.
  core::BenchmarkDataset clean;
  clean.pair = NoisyPair(0.0, 0.0, 41);
  // Strip the unaligned-fraction dangling truth to model a fully matchable
  // pair (the standard IDS-sampled path).
  clean.pair.dangling1.clear();
  clean.pair.dangling2.clear();
  clean.pair.name = "CLEAN";
  clean.name = "CLEAN-test";
  const auto clean_result =
      core::RunCrossValidation("MTransE", clean, config, /*num_folds=*/1);
  EXPECT_FALSE(clean_result.has_abstention);
}

TEST(RobustnessBenchTest, ForkedBenchEmitsValidatedTelemetry) {
  std::string tmpl = ::testing::TempDir() + "robustness_bench_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  ASSERT_NE(dir, nullptr);
  const std::string json_path = std::string(dir) + "/BENCH_robustness.json";
  const std::string run = std::string("\"") + OPENEA_BENCH_ROBUSTNESS +
                          "\" --scale=small --folds=1 --epochs=2 --seed=7 "
                          "--threads=2 --approaches=MTransE --json=" +
                          json_path + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(run.c_str()), 0);
  const std::string validate =
      std::string("\"") + OPENEA_VALIDATE_BENCH_JSON + "\" " + json_path;
  EXPECT_EQ(std::system(validate.c_str()), 0);

  json::Value doc;
  ASSERT_TRUE(json::ReadFile(json_path, &doc).ok());
  EXPECT_EQ(doc.Find("bench")->string_value(), "robustness");
  const json::Value* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  for (const char* key :
       {"robust/hits1/n0_d0/MTransE", "robust/hits1/n40_d20/MTransE",
        "robust/abstention_f1/n20_d0/MTransE",
        "robust/dangling_recall/n40_d20/MTransE", "robust/sweep_f1/t50",
        "robust/hits1_clean_mean"}) {
    EXPECT_NE(gauges->Find(key), nullptr) << key;
  }
  // The noise realization is reported (informationally) under robust/.
  const json::Value* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("robust/corrupted_train_seeds"), nullptr);
  EXPECT_GT(counters->Find("robust/corrupted_train_seeds")->number(), 0.0);
}

}  // namespace
}  // namespace openea
