#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/datagen/kg_pair.h"
#include "src/datagen/synthetic_kg.h"
#include "src/kg/graph_stats.h"

namespace openea::datagen {
namespace {

SyntheticKgConfig SmallConfig() {
  SyntheticKgConfig config;
  config.num_entities = 400;
  config.avg_degree = 5.0;
  config.num_relations = 20;
  config.num_attributes = 15;
  config.vocabulary_size = 200;
  config.seed = 33;
  return config;
}

TEST(SyntheticKgTest, MeetsSizeAndDegreeTargets) {
  const GeneratedKg gen = GenerateSyntheticKg(SmallConfig());
  EXPECT_EQ(gen.graph.NumEntities(), 400u);
  EXPECT_EQ(gen.graph.NumRelations(), 20u);
  EXPECT_NEAR(gen.graph.AverageDegree(), 5.0, 1.0);
  EXPECT_EQ(gen.vocabulary.size(), 200u);
}

TEST(SyntheticKgTest, NoIsolatedEntitiesAndNoSelfLoops) {
  const GeneratedKg gen = GenerateSyntheticKg(SmallConfig());
  EXPECT_DOUBLE_EQ(kg::IsolatedEntityRatio(gen.graph), 0.0);
  for (const kg::Triple& t : gen.graph.triples()) {
    EXPECT_NE(t.head, t.tail);
  }
}

TEST(SyntheticKgTest, TriplesAreUnique) {
  const GeneratedKg gen = GenerateSyntheticKg(SmallConfig());
  std::set<std::tuple<int, int, int>> seen;
  for (const kg::Triple& t : gen.graph.triples()) {
    EXPECT_TRUE(seen.insert({t.head, t.relation, t.tail}).second);
  }
}

TEST(SyntheticKgTest, DeterministicForSameSeed) {
  const GeneratedKg a = GenerateSyntheticKg(SmallConfig());
  const GeneratedKg b = GenerateSyntheticKg(SmallConfig());
  ASSERT_EQ(a.graph.NumTriples(), b.graph.NumTriples());
  for (size_t i = 0; i < a.graph.NumTriples(); ++i) {
    EXPECT_EQ(a.graph.triples()[i], b.graph.triples()[i]);
  }
  ASSERT_EQ(a.graph.NumAttributeTriples(), b.graph.NumAttributeTriples());
}

TEST(SyntheticKgTest, HasAttributesDescriptionsAndClustering) {
  const GeneratedKg gen = GenerateSyntheticKg(SmallConfig());
  EXPECT_GT(gen.graph.NumAttributeTriples(), 400u);
  size_t with_desc = 0;
  for (size_t e = 0; e < gen.graph.NumEntities(); ++e) {
    if (!gen.graph.Description(static_cast<kg::EntityId>(e)).empty())
      ++with_desc;
  }
  // Coverage default is 0.8.
  EXPECT_GT(with_desc, gen.graph.NumEntities() / 2);
  EXPECT_GT(kg::AverageClusteringCoefficient(gen.graph), 0.01);
}

TEST(SyntheticKgTest, DegreeDistributionIsHeavyTailed) {
  const GeneratedKg gen = GenerateSyntheticKg(SmallConfig());
  const auto dist = kg::ComputeDegreeDistribution(gen.graph);
  // Low degrees dominate: P(deg in [1,4]) > P(deg in [10,...)).
  double low = 0, high = 0;
  for (size_t d = 1; d <= 4 && d < dist.proportion.size(); ++d)
    low += dist.proportion[d];
  for (size_t d = 10; d < dist.proportion.size(); ++d)
    high += dist.proportion[d];
  EXPECT_GT(low, high);
}

TEST(PseudoWordsTest, UniqueAndNonEmpty) {
  const auto words = GeneratePseudoWords(500, 9);
  EXPECT_EQ(words.size(), 500u);
  std::unordered_set<std::string> unique(words.begin(), words.end());
  EXPECT_EQ(unique.size(), 500u);
  for (const auto& w : words) EXPECT_FALSE(w.empty());
}

class KgPairTest : public ::testing::TestWithParam<HeterogeneityProfile> {};

TEST_P(KgPairTest, StructuralInvariants) {
  const HeterogeneityProfile profile = GetParam();
  const DatasetPair pair = GenerateDatasetPair(SmallConfig(), profile, 5);

  // Both KGs non-trivial.
  EXPECT_GT(pair.kg1.NumTriples(), 100u);
  EXPECT_GT(pair.kg2.NumTriples(), 100u);
  EXPECT_GT(pair.kg1.NumAttributeTriples(), 0u);
  EXPECT_GT(pair.kg2.NumAttributeTriples(), 0u);

  // Reference alignment is 1-to-1 and within bounds.
  std::unordered_set<kg::EntityId> lefts, rights;
  for (const auto& ap : pair.reference) {
    EXPECT_GE(ap.left, 0);
    EXPECT_LT(static_cast<size_t>(ap.left), pair.kg1.NumEntities());
    EXPECT_GE(ap.right, 0);
    EXPECT_LT(static_cast<size_t>(ap.right), pair.kg2.NumEntities());
    EXPECT_TRUE(lefts.insert(ap.left).second) << "duplicate left entity";
    EXPECT_TRUE(rights.insert(ap.right).second) << "duplicate right entity";
  }

  // Unaligned fraction: both KGs have some private entities.
  EXPECT_LT(pair.reference.size(), pair.kg1.NumEntities());
  EXPECT_LT(pair.reference.size(), pair.kg2.NumEntities());
  // But the alignment covers most entities.
  EXPECT_GT(pair.reference.size(), pair.kg1.NumEntities() / 2);
}

TEST_P(KgPairTest, Deterministic) {
  const HeterogeneityProfile profile = GetParam();
  const DatasetPair a = GenerateDatasetPair(SmallConfig(), profile, 5);
  const DatasetPair b = GenerateDatasetPair(SmallConfig(), profile, 5);
  EXPECT_EQ(a.reference.size(), b.reference.size());
  EXPECT_EQ(a.kg2.NumTriples(), b.kg2.NumTriples());
  EXPECT_EQ(a.kg2.NumLiterals(), b.kg2.NumLiterals());
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, KgPairTest,
    ::testing::Values(HeterogeneityProfile::EnFr(),
                      HeterogeneityProfile::EnDe(),
                      HeterogeneityProfile::DbpWd(),
                      HeterogeneityProfile::DbpYg()),
    [](const ::testing::TestParamInfo<HeterogeneityProfile>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(KgPairProfileTest, EnFrIsCrossLingual) {
  const DatasetPair pair =
      GenerateDatasetPair(SmallConfig(), HeterogeneityProfile::EnFr(), 5);
  EXPECT_GT(pair.dictionary.size(), 0u);
  // KG2 names carry the fr prefix.
  EXPECT_EQ(pair.kg2.entities().Name(0).substr(0, 3), "fr:");
}

TEST(KgPairProfileTest, DbpWdHasOpaqueNames) {
  const DatasetPair pair =
      GenerateDatasetPair(SmallConfig(), HeterogeneityProfile::DbpWd(), 5);
  EXPECT_EQ(pair.dictionary.size(), 0u);
  // All KG2 entity names are wd:Q<digits>.
  for (const auto& name : pair.kg2.entities().names()) {
    EXPECT_EQ(name.substr(0, 4), "wd:Q") << name;
  }
}

TEST(KgPairProfileTest, DbpYgHasCoarseSchema) {
  const DatasetPair pair =
      GenerateDatasetPair(SmallConfig(), HeterogeneityProfile::DbpYg(), 5);
  // YAGO-style merge collapses most relations/attributes.
  EXPECT_LT(pair.kg2.NumRelations(), pair.kg1.NumRelations());
  EXPECT_LT(pair.kg2.NumAttributes(), pair.kg1.NumAttributes());
}

}  // namespace
}  // namespace openea::datagen
