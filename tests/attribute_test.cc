#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/datagen/kg_pair.h"
#include "src/embedding/attribute.h"
#include "src/math/vec.h"

namespace openea::embedding {
namespace {

datagen::DatasetPair MakePair(const datagen::HeterogeneityProfile& profile) {
  datagen::SyntheticKgConfig config;
  config.num_entities = 300;
  config.num_relations = 15;
  config.num_attributes = 12;
  config.vocabulary_size = 150;
  config.seed = 9;
  return GenerateDatasetPair(config, profile, 9);
}

TEST(AlignAttributesTest, RecoversCorrespondenceOnDbpYg) {
  // D-Y keeps attribute values nearly identical, so value overlap should
  // align most surviving attributes.
  const auto pair = MakePair(datagen::HeterogeneityProfile::DbpYg());
  const auto mapping = AlignAttributesByName(pair.kg1, pair.kg2, 0.3);
  size_t aligned = 0;
  for (int m : mapping) {
    if (m >= 0) ++aligned;
  }
  EXPECT_GT(aligned, mapping.size() / 2);
}

TEST(AlignAttributesTest, OpaqueNamesStillMatchByValues) {
  // D-W attribute names are numeric (no lexical overlap); any surviving
  // alignment must come from value overlap alone.
  const auto pair = MakePair(datagen::HeterogeneityProfile::DbpWd());
  const auto with_values = AlignAttributesByName(pair.kg1, pair.kg2, 0.3);
  const auto strict = AlignAttributesByName(pair.kg1, pair.kg2, 0.95);
  size_t loose_count = 0, strict_count = 0;
  for (int m : with_values) {
    if (m >= 0) ++loose_count;
  }
  for (int m : strict) {
    if (m >= 0) ++strict_count;
  }
  EXPECT_GE(loose_count, strict_count);
}

TEST(AttributeCorrelationTest, CorrelatedAttributesEndUpCloser) {
  const auto pair = MakePair(datagen::HeterogeneityProfile::EnFr());
  Rng rng(3);
  AttributeCorrelationEmbedding emb(pair.kg1, pair.kg2, 16, rng);
  emb.Train(5, 0.1f, rng);
  // Entity vectors should be unit length (or zero for attribute-less
  // entities).
  const auto vectors = emb.EntityAttributeVectors(pair.kg1, false);
  for (size_t e = 0; e < vectors.rows(); ++e) {
    const float norm = math::L2Norm(vectors.Row(e));
    EXPECT_TRUE(norm < 1e-6f || std::fabs(norm - 1.0f) < 1e-4f);
  }
}

TEST(AttributeCorrelationTest, AlignedEntitiesMoreSimilarThanRandom) {
  const auto pair = MakePair(datagen::HeterogeneityProfile::DbpYg());
  Rng rng(3);
  AttributeCorrelationEmbedding emb(pair.kg1, pair.kg2, 16, rng);
  emb.Train(5, 0.1f, rng);
  const auto v1 = emb.EntityAttributeVectors(pair.kg1, false);
  const auto v2 = emb.EntityAttributeVectors(pair.kg2, true);
  double aligned_sim = 0.0, random_sim = 0.0;
  size_t count = 0;
  Rng pick(7);
  for (const auto& p : pair.reference) {
    aligned_sim += math::CosineSimilarity(v1.Row(p.left), v2.Row(p.right));
    random_sim += math::CosineSimilarity(
        v1.Row(p.left), v2.Row(pick.NextBounded(pair.kg2.NumEntities())));
    ++count;
  }
  EXPECT_GT(aligned_sim / count, random_sim / count);
}

TEST(LiteralFeaturesTest, AlignedEntitiesAreNearest) {
  const auto pair = MakePair(datagen::HeterogeneityProfile::DbpYg());
  const text::PseudoWordEmbeddings words(32, 5);
  const auto f1 = BuildLiteralFeatures(pair.kg1, words, true);
  const auto f2 = BuildLiteralFeatures(pair.kg2, words, true);
  double aligned_sim = 0.0, random_sim = 0.0;
  Rng pick(7);
  for (const auto& p : pair.reference) {
    aligned_sim += math::CosineSimilarity(f1.Row(p.left), f2.Row(p.right));
    random_sim += math::CosineSimilarity(
        f1.Row(p.left), f2.Row(pick.NextBounded(pair.kg2.NumEntities())));
  }
  EXPECT_GT(aligned_sim, random_sim + 0.2 * pair.reference.size());
}

TEST(LiteralFeaturesTest, CrossLingualDictionaryHelps) {
  const auto pair = MakePair(datagen::HeterogeneityProfile::EnFr());
  const text::PseudoWordEmbeddings with_dict(32, 5, &pair.dictionary);
  const text::PseudoWordEmbeddings without_dict(32, 5);
  auto mean_aligned_sim = [&](const text::PseudoWordEmbeddings& words) {
    const auto f1 = BuildLiteralFeatures(pair.kg1, words, false);
    const auto f2 = BuildLiteralFeatures(pair.kg2, words, false);
    double sum = 0.0;
    for (const auto& p : pair.reference) {
      sum += math::CosineSimilarity(f1.Row(p.left), f2.Row(p.right));
    }
    return sum / static_cast<double>(pair.reference.size());
  };
  EXPECT_GT(mean_aligned_sim(with_dict), mean_aligned_sim(without_dict));
}

TEST(DescriptionFeaturesTest, ZeroRowsForMissingDescriptions) {
  const auto pair = MakePair(datagen::HeterogeneityProfile::EnFr());
  const text::PseudoWordEmbeddings words(16, 5);
  const auto f = BuildDescriptionFeatures(pair.kg1, words);
  size_t zero_rows = 0;
  for (size_t e = 0; e < f.rows(); ++e) {
    const bool has_desc =
        !pair.kg1.Description(static_cast<kg::EntityId>(e)).empty();
    const bool zero = math::L2Norm(f.Row(e)) < 1e-8f;
    EXPECT_EQ(zero, !has_desc);
    if (zero) ++zero_rows;
  }
  EXPECT_GT(zero_rows, 0u);  // Some entities lack descriptions.
}

TEST(CharLiteralFeaturesTest, DeterministicAndNormalized) {
  const auto pair = MakePair(datagen::HeterogeneityProfile::DbpYg());
  const auto a = BuildCharLiteralFeatures(pair.kg1, 16, 3);
  const auto b = BuildCharLiteralFeatures(pair.kg1, 16, 3);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.Data()[i], b.Data()[i]);
  }
}

}  // namespace
}  // namespace openea::embedding
