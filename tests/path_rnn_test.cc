#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/embedding/path_rnn.h"

namespace openea::embedding {
namespace {

constexpr size_t kEntities = 30;
constexpr size_t kRelations = 4;

std::vector<kg::Triple> RingTriples() {
  std::vector<kg::Triple> triples;
  for (size_t e = 0; e < kEntities; ++e) {
    triples.push_back({static_cast<kg::EntityId>(e),
                       static_cast<kg::RelationId>(e % kRelations),
                       static_cast<kg::EntityId>((e + 1) % kEntities)});
  }
  return triples;
}

std::vector<std::vector<int>> OutIndex(const std::vector<kg::Triple>& ts) {
  std::vector<std::vector<int>> index(kEntities);
  for (size_t i = 0; i < ts.size(); ++i) {
    index[ts[i].head].push_back(static_cast<int>(i));
  }
  return index;
}

TEST(RsnModelTest, ChainLossDecreases) {
  Rng rng(5);
  RsnOptions options;
  options.dim = 16;
  options.learning_rate = 0.1f;
  RsnModel model(kEntities, kRelations, options, rng);
  const auto triples = RingTriples();
  const auto index = OutIndex(triples);
  Rng train_rng(7);
  float first = 0.0f, last = 0.0f;
  for (int epoch = 0; epoch < 60; ++epoch) {
    float total = 0.0f;
    for (size_t c = 0; c < triples.size(); ++c) {
      const auto chain =
          RsnModel::SampleChain(triples, index, train_rng, 2);
      total += model.TrainOnChain(chain, train_rng);
    }
    model.PostEpoch();
    if (epoch == 0) first = total;
    last = total;
  }
  EXPECT_LT(last, first * 0.8f);
}

TEST(RsnModelTest, PredictsTrueNextEntityOverRandom) {
  Rng rng(5);
  RsnOptions options;
  options.dim = 16;
  options.learning_rate = 0.1f;
  RsnModel model(kEntities, kRelations, options, rng);
  const auto triples = RingTriples();
  const auto index = OutIndex(triples);
  Rng train_rng(7);
  for (int epoch = 0; epoch < 80; ++epoch) {
    for (size_t c = 0; c < triples.size(); ++c) {
      const auto chain =
          RsnModel::SampleChain(triples, index, train_rng, 2);
      model.TrainOnChain(chain, train_rng);
    }
    model.PostEpoch();
  }
  // The true successor should outscore random candidates at step 0.
  Rng check(13);
  size_t wins = 0, total = 0;
  for (const kg::Triple& t : triples) {
    const std::vector<kg::Triple> chain = {t};
    const float s_true = model.ScoreNext(chain, 0, t.tail);
    for (int k = 0; k < 5; ++k) {
      const auto cand =
          static_cast<kg::EntityId>(check.NextBounded(kEntities));
      if (s_true >= model.ScoreNext(chain, 0, cand)) ++wins;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(wins) / total, 0.8);
}

TEST(RsnModelTest, SampleChainFollowsEdges) {
  const auto triples = RingTriples();
  const auto index = OutIndex(triples);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto chain = RsnModel::SampleChain(triples, index, rng, 3);
    ASSERT_FALSE(chain.empty());
    EXPECT_LE(chain.size(), 3u);
    for (size_t j = 1; j < chain.size(); ++j) {
      EXPECT_EQ(chain[j].head, chain[j - 1].tail);
    }
  }
}

TEST(RsnModelTest, EmbeddingsStayFinite) {
  Rng rng(5);
  RsnOptions options;
  options.dim = 8;
  options.learning_rate = 0.5f;
  RsnModel model(kEntities, kRelations, options, rng);
  const auto triples = RingTriples();
  const auto index = OutIndex(triples);
  Rng train_rng(7);
  for (int epoch = 0; epoch < 30; ++epoch) {
    for (size_t c = 0; c < triples.size(); ++c) {
      model.TrainOnChain(RsnModel::SampleChain(triples, index, train_rng, 3),
                         train_rng);
    }
    model.PostEpoch();
  }
  for (size_t e = 0; e < kEntities; ++e) {
    for (float v : model.entity_table().Row(e)) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

}  // namespace
}  // namespace openea::embedding
