#include <gtest/gtest.h>

#include <limits>

#include "src/common/rng.h"
#include "src/eval/folds.h"
#include "src/eval/geometry.h"
#include "src/eval/metrics.h"

namespace openea::eval {
namespace {

/// Builds a model whose first `good` test pairs embed identically (perfect
/// matches) and whose remaining pairs are random.
core::AlignmentModel MakeModel(size_t n, size_t good, size_t dim,
                               uint64_t seed) {
  Rng rng(seed);
  core::AlignmentModel model;
  model.emb1 = math::Matrix(n, dim);
  model.emb2 = math::Matrix(n, dim);
  model.emb1.FillUniform(rng, 1.0f);
  model.emb2.FillUniform(rng, 1.0f);
  for (size_t i = 0; i < good; ++i) {
    std::copy(model.emb1.Row(i).begin(), model.emb1.Row(i).end(),
              model.emb2.Row(i).begin());
  }
  return model;
}

kg::Alignment IdentityPairs(size_t n) {
  kg::Alignment pairs;
  for (size_t i = 0; i < n; ++i) {
    pairs.push_back({static_cast<kg::EntityId>(i),
                     static_cast<kg::EntityId>(i)});
  }
  return pairs;
}

TEST(EvaluateRankingTest, PerfectModelScoresOne) {
  const auto model = MakeModel(20, 20, 8, 3);
  const auto metrics = EvaluateRanking(model, IdentityPairs(20),
                                       align::DistanceMetric::kCosine);
  EXPECT_DOUBLE_EQ(metrics.hits1, 1.0);
  EXPECT_DOUBLE_EQ(metrics.hits5, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mr, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mrr, 1.0);
}

TEST(EvaluateRankingTest, PartialModelScoresProportionally) {
  const auto model = MakeModel(40, 20, 16, 3);
  const auto metrics = EvaluateRanking(model, IdentityPairs(40),
                                       align::DistanceMetric::kCosine);
  EXPECT_GE(metrics.hits1, 0.45);
  EXPECT_LT(metrics.hits1, 0.9);
  EXPECT_GE(metrics.hits5, metrics.hits1);
  EXPECT_GE(metrics.mrr, metrics.hits1);
  EXPECT_GE(metrics.mr, 1.0);
}

TEST(EvaluateRankingTest, CollapsedEmbeddingsScoreAtChanceLevel) {
  // Every embedding is the same vector, so all n candidates tie with the
  // true counterpart. Mid-rank scoring gives rank = 1 + (n-1)/2 for every
  // pair; the optimistic convention would wrongly report Hits@1 = 1 here.
  const size_t n = 11;
  core::AlignmentModel model;
  model.emb1 = math::Matrix(n, 4);
  model.emb2 = math::Matrix(n, 4);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      model.emb1.Row(i)[j] = 0.5f;
      model.emb2.Row(i)[j] = 0.5f;
    }
  }
  const auto metrics = EvaluateRanking(model, IdentityPairs(n),
                                       align::DistanceMetric::kCosine);
  EXPECT_DOUBLE_EQ(metrics.hits1, 0.0);
  EXPECT_DOUBLE_EQ(metrics.hits5, 0.0);  // rank = 6 > 5.
  EXPECT_DOUBLE_EQ(metrics.mr, (n + 1) / 2.0);
  EXPECT_DOUBLE_EQ(metrics.mrr, 2.0 / (n + 1));
}

TEST(EvaluateRankingTest, EmptyTestIsZero) {
  const auto model = MakeModel(5, 5, 4, 3);
  const auto metrics =
      EvaluateRanking(model, {}, align::DistanceMetric::kCosine);
  EXPECT_DOUBLE_EQ(metrics.hits1, 0.0);
}

TEST(MatchAccuracyTest, StableMarriageAtLeastRecoversPerfectModel) {
  const auto model = MakeModel(15, 15, 8, 3);
  for (auto strategy : {align::InferenceStrategy::kGreedy,
                        align::InferenceStrategy::kStableMarriage,
                        align::InferenceStrategy::kKuhnMunkres}) {
    EXPECT_DOUBLE_EQ(MatchAccuracy(model, IdentityPairs(15),
                                   align::DistanceMetric::kCosine, strategy),
                     1.0);
  }
}

TEST(ComparePairsTest, PrecisionRecallF1) {
  kg::Alignment predicted = {{0, 0}, {1, 1}, {2, 9}};
  kg::Alignment reference = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const auto prf = ComparePairs(predicted, reference);
  EXPECT_NEAR(prf.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(prf.recall, 0.5, 1e-12);
  EXPECT_NEAR(prf.f1, 2 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5), 1e-12);
}

TEST(ComparePairsTest, NegativeAndHighBitIdsDoNotCollide) {
  // EntityId is int32_t: kInvalidId (-1) and ids with the sign bit set must
  // pack into distinct 64-bit keys. The old key sign-extended the right id,
  // smearing 0xFFFFFFFF over the half that holds the left id, so swapped
  // pairs like {-1, 5} vs {5, -1} exercised exactly the corrupted bits.
  const kg::EntityId lo = std::numeric_limits<kg::EntityId>::min();
  const kg::EntityId hi = std::numeric_limits<kg::EntityId>::max();
  kg::Alignment predicted = {{-1, 5}, {5, -1}, {lo, hi}, {7, 7}};
  kg::Alignment reference = {{5, -1}, {lo, hi}, {7, 8}};
  const auto prf = ComparePairs(predicted, reference);
  // Only {5, -1} and {lo, hi} match; {-1, 5} must not alias {5, -1}.
  EXPECT_NEAR(prf.precision, 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(prf.recall, 2.0 / 3.0, 1e-12);
}

TEST(AggregateTest, MeanAndStd) {
  const auto ms = Aggregate({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ms.mean, 2.0);
  EXPECT_DOUBLE_EQ(ms.std, 1.0);
  const auto single = Aggregate({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.std, 0.0);
}

TEST(MakeFoldsTest, PaperProtocolProportions) {
  kg::Alignment ref = IdentityPairs(1000);
  const auto folds = MakeFolds(ref, 5, 0.1, 7);
  ASSERT_EQ(folds.size(), 5u);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size(), 200u);
    EXPECT_EQ(fold.valid.size(), 100u);
    EXPECT_EQ(fold.test.size(), 700u);
  }
}

TEST(MakeFoldsTest, TrainFoldsAreDisjoint) {
  kg::Alignment ref = IdentityPairs(100);
  const auto folds = MakeFolds(ref, 5, 0.1, 7);
  std::set<int> seen;
  for (const auto& fold : folds) {
    for (const auto& p : fold.train) {
      EXPECT_TRUE(seen.insert(p.left).second)
          << "entity in two train folds: " << p.left;
    }
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(MakeFoldsTest, NoLeakageWithinFold) {
  kg::Alignment ref = IdentityPairs(200);
  const auto folds = MakeFolds(ref, 5, 0.1, 7);
  for (const auto& fold : folds) {
    std::set<int> ids;
    for (const auto& p : fold.train) ids.insert(p.left);
    for (const auto& p : fold.valid) EXPECT_EQ(ids.count(p.left), 0u);
    for (const auto& p : fold.test) EXPECT_EQ(ids.count(p.left), 0u);
  }
}

TEST(SimilarityDistributionTest, PerfectModelHasHighTop1AndGap) {
  const auto model = MakeModel(30, 30, 16, 3);
  const auto dist = AnalyzeSimilarityDistribution(model, IdentityPairs(30));
  EXPECT_NEAR(dist.Top1(), 1.0, 1e-5);
  EXPECT_GT(dist.Top1Top5Gap(), 0.2);
  // Monotone non-increasing top-k similarities.
  for (int k = 1; k < 5; ++k) {
    EXPECT_GE(dist.mean_topk[k - 1], dist.mean_topk[k]);
  }
}

TEST(HubnessTest, PerfectModelHasAllOnes) {
  const auto model = MakeModel(30, 30, 16, 3);
  const auto stats = AnalyzeHubness(model, IdentityPairs(30),
                                    align::DistanceMetric::kCosine);
  EXPECT_NEAR(stats.one, 1.0, 1e-12);
  EXPECT_NEAR(stats.zero, 0.0, 1e-12);
}

TEST(HubnessTest, RandomModelHasIsolatesAndHubs) {
  const auto model = MakeModel(100, 0, 4, 3);
  const auto stats = AnalyzeHubness(model, IdentityPairs(100),
                                    align::DistanceMetric::kCosine);
  EXPECT_GT(stats.zero, 0.2);  // Many targets never appear as NN.
  EXPECT_NEAR(stats.zero + stats.one + stats.two_to_four + stats.five_plus,
              1.0, 1e-9);
}

}  // namespace
}  // namespace openea::eval
