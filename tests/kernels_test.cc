// Tests for the runtime-dispatched kernel layer (src/math/kernels.h,
// DESIGN.md "Kernel dispatch"):
//  * the scalar and AVX2 backends agree bitwise on every elementwise kernel
//    (axpy/scale/add/sub/hadamard and the fused optimizer updates), on odd
//    tail lengths and unaligned spans included;
//  * reduction kernels (dot, norms, distances, GEMM) agree within a small
//    ULP tolerance (the AVX2 backend reassociates the accumulation);
//  * NaNs propagate instead of being masked;
//  * the alignment pipeline stays bit-identical at 1 vs 8 threads, and the
//    dense similarity matrix stays bit-identical to the streaming top-k,
//    under whichever backend is active. The ctest registration runs this
//    binary twice — once under the startup default and once with
//    OPENEA_KERNELS=scalar — so both dispatch settings are pinned.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "src/align/similarity.h"
#include "src/align/topk.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/math/embedding_table.h"
#include "src/math/kernels.h"
#include "src/math/matrix.h"

namespace openea::math::kernels {
namespace {

/// Distance between two floats in units in the last place, treating the
/// bit patterns as sign-magnitude integers. Infinity/NaN mismatches count
/// as far apart.
int64_t UlpDistance(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) {
    return (std::isnan(a) && std::isnan(b))
               ? 0
               : std::numeric_limits<int64_t>::max();
  }
  int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if (ia < 0) ia = std::numeric_limits<int32_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<int32_t>::min() - ib;
  return std::llabs(static_cast<int64_t>(ia) - static_cast<int64_t>(ib));
}

/// Reduction tolerance: the AVX2 backend folds 32 partial sums, so a few
/// ULPs of reassociation drift per reduction is expected; anything larger
/// means a kernel bug, not float noise.
constexpr int64_t kReductionUlps = 64;

std::vector<float> RandomVec(size_t n, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = rng.NextFloat(-scale, scale);
  return v;
}

/// The tail/alignment sweep: lengths around the 8- and 32-lane boundaries
/// plus an offset start to exercise unaligned loads.
const size_t kLengths[] = {1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100, 257};

class KernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2Supported()) {
      GTEST_SKIP() << "AVX2+FMA unavailable; single-backend build";
    }
  }
  const KernelTable& scalar_ = Table(Backend::kScalar);
  const KernelTable& avx2_ = Table(Backend::kAvx2);
};

TEST_F(KernelsTest, ReductionsAgreeWithinUlps) {
  for (size_t n : kLengths) {
    // offset 1 makes every span unaligned regardless of allocator.
    const auto a_buf = RandomVec(n + 1, 100 + n);
    const auto b_buf = RandomVec(n + 1, 200 + n);
    const float* a = a_buf.data() + 1;
    const float* b = b_buf.data() + 1;
    EXPECT_LE(UlpDistance(scalar_.dot(a, b, n), avx2_.dot(a, b, n)),
              kReductionUlps)
        << "dot n=" << n;
    EXPECT_LE(UlpDistance(scalar_.squared_l2(a, n), avx2_.squared_l2(a, n)),
              kReductionUlps)
        << "squared_l2 n=" << n;
    EXPECT_LE(UlpDistance(scalar_.l1(a, n), avx2_.l1(a, n)), kReductionUlps)
        << "l1 n=" << n;
    EXPECT_LE(UlpDistance(scalar_.squared_l2_distance(a, b, n),
                          avx2_.squared_l2_distance(a, b, n)),
              kReductionUlps)
        << "squared_l2_distance n=" << n;
    EXPECT_LE(UlpDistance(scalar_.l1_distance(a, b, n),
                          avx2_.l1_distance(a, b, n)),
              kReductionUlps)
        << "l1_distance n=" << n;
  }
}

TEST_F(KernelsTest, RowBatchesMatchTheirCellKernelExactly) {
  // The *_rows kernels must produce the same float as calling the cell
  // kernel per row — within one backend this is exact, which is what keeps
  // the dense similarity matrix and the streaming top-k bit-identical.
  const size_t rows = 13, n = 33, ldb = 40;
  const auto a = RandomVec(n, 1);
  const auto b = RandomVec(rows * ldb, 2);
  for (const KernelTable* kt : {&scalar_, &avx2_}) {
    std::vector<float> out(rows);
    kt->dot_rows(a.data(), b.data(), ldb, out.data(), rows, n);
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(out[r], kt->dot(a.data(), b.data() + r * ldb, n)) << r;
    }
    kt->squared_l2_distance_rows(a.data(), b.data(), ldb, out.data(), rows,
                                 n);
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(out[r],
                kt->squared_l2_distance(a.data(), b.data() + r * ldb, n))
          << r;
    }
    kt->l1_distance_rows(a.data(), b.data(), ldb, out.data(), rows, n);
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(out[r], kt->l1_distance(a.data(), b.data() + r * ldb, n))
          << r;
    }
  }
}

TEST_F(KernelsTest, ElementwiseKernelsBitIdenticalAcrossBackends) {
  for (size_t n : kLengths) {
    const auto x_buf = RandomVec(n + 1, 300 + n);
    const auto y0_buf = RandomVec(n + 1, 400 + n);
    const float* x = x_buf.data() + 1;

    auto ys = y0_buf;
    auto yv = y0_buf;
    scalar_.axpy(0.37f, x, ys.data() + 1, n);
    avx2_.axpy(0.37f, x, yv.data() + 1, n);
    ASSERT_EQ(ys, yv) << "axpy n=" << n;

    ys = y0_buf;
    yv = y0_buf;
    scalar_.scale(-1.73f, ys.data() + 1, n);
    avx2_.scale(-1.73f, yv.data() + 1, n);
    ASSERT_EQ(ys, yv) << "scale n=" << n;

    std::vector<float> os(n), ov(n);
    scalar_.add(x, y0_buf.data() + 1, os.data(), n);
    avx2_.add(x, y0_buf.data() + 1, ov.data(), n);
    ASSERT_EQ(os, ov) << "add n=" << n;
    scalar_.sub(x, y0_buf.data() + 1, os.data(), n);
    avx2_.sub(x, y0_buf.data() + 1, ov.data(), n);
    ASSERT_EQ(os, ov) << "sub n=" << n;
    scalar_.hadamard(x, y0_buf.data() + 1, os.data(), n);
    avx2_.hadamard(x, y0_buf.data() + 1, ov.data(), n);
    ASSERT_EQ(os, ov) << "hadamard n=" << n;
  }
}

TEST_F(KernelsTest, FusedOptimizerUpdatesBitIdenticalAcrossBackends) {
  for (size_t n : kLengths) {
    const auto grad = RandomVec(n, 500 + n, 0.1f);
    const auto row0 = RandomVec(n, 600 + n);
    auto acc0 = RandomVec(n, 700 + n, 0.5f);
    for (float& a : acc0) a = std::fabs(a);  // Accumulators are sums of g^2.

    auto rs = row0, as = acc0, rv = row0, av = acc0;
    scalar_.adagrad_update(rs.data(), as.data(), grad.data(), n, 0.01f,
                           1e-8f);
    avx2_.adagrad_update(rv.data(), av.data(), grad.data(), n, 0.01f, 1e-8f);
    ASSERT_EQ(rs, rv) << "adagrad row n=" << n;
    ASSERT_EQ(as, av) << "adagrad acc n=" << n;

    rs = row0;
    rv = row0;
    scalar_.sgd_update(rs.data(), grad.data(), n, 0.01f);
    avx2_.sgd_update(rv.data(), grad.data(), n, 0.01f);
    ASSERT_EQ(rs, rv) << "sgd n=" << n;
  }
}

TEST_F(KernelsTest, GemmBlockAgreesWithinUlpsAndKeepsZeroSkip) {
  const size_t m = 7, k = 33, n = 19;
  auto a = RandomVec(m * k, 11);
  // Exercise the scalar aik == 0 fast path.
  for (size_t i = 0; i < a.size(); i += 5) a[i] = 0.0f;
  const auto b = RandomVec(k * n, 12);
  std::vector<float> out_s(m * n), out_v(m * n);
  scalar_.gemm_block(a.data(), k, b.data(), n, out_s.data(), n, m, k, n);
  avx2_.gemm_block(a.data(), k, b.data(), n, out_v.data(), n, m, k, n);
  for (size_t i = 0; i < out_s.size(); ++i) {
    EXPECT_LE(UlpDistance(out_s[i], out_v[i]), kReductionUlps) << i;
  }
}

TEST_F(KernelsTest, NanPropagatesThroughBothBackends) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (size_t n : {1u, 8u, 9u, 33u}) {
    auto a = RandomVec(n, 800 + n);
    const auto b = RandomVec(n, 900 + n);
    a[n / 2] = nan;
    for (const KernelTable* kt : {&scalar_, &avx2_}) {
      EXPECT_TRUE(std::isnan(kt->dot(a.data(), b.data(), n))) << n;
      EXPECT_TRUE(std::isnan(kt->l1(a.data(), n))) << n;
      EXPECT_TRUE(std::isnan(kt->squared_l2_distance(a.data(), b.data(), n)))
          << n;
      std::vector<float> out(n, 0.0f);
      kt->hadamard(a.data(), b.data(), out.data(), n);
      EXPECT_TRUE(std::isnan(out[n / 2])) << n;
      out.assign(n, 0.0f);
      kt->axpy(1.0f, a.data(), out.data(), n);
      EXPECT_TRUE(std::isnan(out[n / 2])) << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch selection.
// ---------------------------------------------------------------------------

TEST(KernelDispatchTest, ActiveTableMatchesReportedBackend) {
  // Whatever OPENEA_KERNELS said at startup, the active table must be the
  // table of the reported backend and the name must round-trip.
  const Backend active = ActiveBackend();
  EXPECT_EQ(&Active(), &Table(active));
  const char* name = BackendName(active);
  EXPECT_TRUE(std::strcmp(name, "scalar") == 0 ||
              std::strcmp(name, "avx2") == 0);
  if (active == Backend::kAvx2) EXPECT_TRUE(Avx2Supported());
}

TEST(KernelDispatchTest, ForcingUnavailableBackendIsRejected) {
  if (Avx2Supported()) GTEST_SKIP() << "AVX2 available; nothing to reject";
  const KernelTable* before = &Active();
  EXPECT_FALSE(SetBackendForTesting(Backend::kAvx2));
  EXPECT_EQ(&Active(), before);
}

TEST(KernelDispatchTest, SetBackendForTestingSwitchesAndRestores) {
  const Backend original = ActiveBackend();
  ASSERT_TRUE(SetBackendForTesting(Backend::kScalar));
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  EXPECT_EQ(&Active(), &Table(Backend::kScalar));
  ASSERT_TRUE(SetBackendForTesting(original));
  EXPECT_EQ(ActiveBackend(), original);
}

// ---------------------------------------------------------------------------
// Pipeline-level determinism pins, run under whichever backend the ctest
// registration selected via OPENEA_KERNELS.
// ---------------------------------------------------------------------------

struct ThreadGuard {
  int saved = Threads();
  ~ThreadGuard() { SetThreads(saved); }
};

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillUniform(rng, 1.0f);
  return m;
}

TEST(KernelDeterminismTest, SimilarityBitIdenticalAtOneVsEightThreads) {
  ThreadGuard guard;
  const auto src = RandomMatrix(70, 33, 21);  // Odd dim: tail path in play.
  const auto tgt = RandomMatrix(80, 33, 22);
  for (auto metric :
       {align::DistanceMetric::kCosine, align::DistanceMetric::kEuclidean,
        align::DistanceMetric::kManhattan, align::DistanceMetric::kInner}) {
    SetThreads(1);
    const Matrix serial = align::SimilarityMatrix(src, tgt, metric);
    SetThreads(8);
    const Matrix parallel = align::SimilarityMatrix(src, tgt, metric);
    const std::vector<float> want(serial.Data().begin(),
                                  serial.Data().end());
    const std::vector<float> got(parallel.Data().begin(),
                                 parallel.Data().end());
    ASSERT_EQ(got, want) << "metric "
                         << align::DistanceMetricName(metric) << " backend "
                         << BackendName(ActiveBackend());
  }
}

TEST(KernelDeterminismTest, StreamingTopKMatchesDenseArgmaxExactly) {
  ThreadGuard guard;
  SetThreads(8);
  const auto src = RandomMatrix(60, 33, 31);
  const auto tgt = RandomMatrix(90, 33, 32);
  for (auto metric :
       {align::DistanceMetric::kCosine, align::DistanceMetric::kEuclidean,
        align::DistanceMetric::kManhattan, align::DistanceMetric::kInner}) {
    const Matrix sim = align::SimilarityMatrix(src, tgt, metric);
    align::TopKOptions options;
    options.k = 1;
    options.metric = metric;
    const align::TopKResult result = align::StreamingTopK(src, tgt, options);
    for (size_t i = 0; i < src.rows(); ++i) {
      const auto row = sim.Row(i);
      size_t best = 0;
      for (size_t j = 1; j < row.size(); ++j) {
        if (row[j] > row[best]) best = j;
      }
      ASSERT_EQ(result.entries[i].index, static_cast<int>(best)) << i;
      // Same cells through the same table kernels: exact equality.
      ASSERT_EQ(result.entries[i].value, row[best]) << i;
    }
  }
}

TEST(KernelDeterminismTest, EmbeddingUpdatesBitIdenticalAtOneVsEightThreads) {
  ThreadGuard guard;
  auto run = [&](int threads) {
    SetThreads(threads);
    Rng rng(77);
    EmbeddingTable table(50, 33, InitScheme::kUnit, rng);
    const auto grad = RandomVec(33, 5, 0.1f);
    for (int step = 0; step < 20; ++step) {
      table.ApplyGradient(static_cast<size_t>(step) % 50, grad, 0.01f);
      table.ApplySgd(static_cast<size_t>(step + 7) % 50, grad, 0.01f);
    }
    return std::vector<float>(table.Data().begin(), table.Data().end());
  };
  ASSERT_EQ(run(1), run(8)) << "backend " << BackendName(ActiveBackend());
}

}  // namespace
}  // namespace openea::math::kernels
