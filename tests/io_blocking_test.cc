#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "src/align/blocking.h"
#include "src/common/rng.h"
#include "src/datagen/kg_pair.h"
#include "src/kg/io.h"
#include "src/math/vec.h"

namespace openea {
namespace {

datagen::DatasetPair MakePair() {
  datagen::SyntheticKgConfig config;
  config.num_entities = 200;
  config.num_relations = 10;
  config.num_attributes = 8;
  config.vocabulary_size = 100;
  config.seed = 13;
  return GenerateDatasetPair(config, datagen::HeterogeneityProfile::EnFr(),
                             13);
}

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs cases as concurrent processes, and a
    // shared directory would let one test's SetUp wipe another's files.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("openea_io_test_") + info->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, SaveLoadRoundTrip) {
  const auto pair = MakePair();
  ASSERT_TRUE(kg::SaveDatasetPair(pair, dir_.string()).ok());

  datagen::DatasetPair loaded;
  const Status status = kg::LoadDatasetPair(dir_.string(), &loaded);
  ASSERT_TRUE(status.ok()) << status.ToString();

  EXPECT_EQ(loaded.kg1.NumEntities(), pair.kg1.NumEntities());
  EXPECT_EQ(loaded.kg1.NumTriples(), pair.kg1.NumTriples());
  EXPECT_EQ(loaded.kg2.NumAttributeTriples(),
            pair.kg2.NumAttributeTriples());
  EXPECT_EQ(loaded.reference.size(), pair.reference.size());

  // Name-level equivalence of the reference alignment survives id
  // reassignment.
  std::set<std::pair<std::string, std::string>> expected, actual;
  for (const auto& p : pair.reference) {
    expected.emplace(pair.kg1.entities().Name(p.left),
                     pair.kg2.entities().Name(p.right));
  }
  for (const auto& p : loaded.reference) {
    actual.emplace(loaded.kg1.entities().Name(p.left),
                   loaded.kg2.entities().Name(p.right));
  }
  EXPECT_EQ(expected, actual);

  // Descriptions round-trip by entity name.
  size_t with_desc = 0;
  for (size_t e = 0; e < loaded.kg1.NumEntities(); ++e) {
    if (!loaded.kg1.Description(static_cast<kg::EntityId>(e)).empty()) {
      ++with_desc;
    }
  }
  EXPECT_GT(with_desc, 0u);
}

TEST_F(IoTest, LoadMissingDirectoryFails) {
  datagen::DatasetPair loaded;
  const Status status =
      kg::LoadDatasetPair((dir_ / "nope").string(), &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(IoTest, SaveAlignmentWritesTsv) {
  const auto pair = MakePair();
  std::filesystem::create_directories(dir_);
  const std::string path = (dir_ / "links").string();
  ASSERT_TRUE(kg::SaveAlignment(pair.kg1, pair.kg2, pair.reference, path)
                  .ok());
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find('\t'), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, pair.reference.size());
}

TEST_F(IoTest, TruncatedTripleLineReportsFileAndLine) {
  const auto pair = MakePair();
  ASSERT_TRUE(kg::SaveDatasetPair(pair, dir_.string()).ok());
  // Simulate a write cut off mid-line: the last triple loses its tail
  // column. The loader must name the exact file:line, not just "bad line".
  const std::string rel_path = (dir_ / "rel_triples_1").string();
  size_t lines = 0;
  {
    std::ifstream in(rel_path);
    std::string line;
    while (std::getline(in, line)) ++lines;
  }
  ASSERT_GT(lines, 0u);
  std::ofstream(rel_path, std::ios::app) << "lonely_head\ttruncated_rel\n";

  datagen::DatasetPair loaded;
  const Status status = kg::LoadDatasetPair(dir_.string(), &loaded);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  const std::string expected_context =
      rel_path + ":" + std::to_string(lines + 1);
  EXPECT_NE(status.message().find(expected_context), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("lonely_head"), std::string::npos)
      << status.ToString();
}

TEST_F(IoTest, GarbageLinksFileReportsFileAndLine) {
  const auto pair = MakePair();
  ASSERT_TRUE(kg::SaveDatasetPair(pair, dir_.string()).ok());
  const std::string links_path = (dir_ / "ent_links").string();
  std::ofstream(links_path, std::ios::trunc)
      << "not a tab separated file at all\n";

  datagen::DatasetPair loaded;
  const Status status = kg::LoadDatasetPair(dir_.string(), &loaded);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(links_path + ":1"), std::string::npos)
      << status.ToString();
}

TEST_F(IoTest, LinkToUnknownEntityReportsFileAndLine) {
  const auto pair = MakePair();
  ASSERT_TRUE(kg::SaveDatasetPair(pair, dir_.string()).ok());
  const std::string links_path = (dir_ / "ent_links").string();
  std::ofstream(links_path, std::ios::trunc)
      << "ghost_entity\tother_ghost\n";

  datagen::DatasetPair loaded;
  const Status status = kg::LoadDatasetPair(dir_.string(), &loaded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown entity"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find(links_path + ":1"), std::string::npos)
      << status.ToString();
}

TEST_F(IoTest, GarbageAttributeTripleReportsFileAndLine) {
  const auto pair = MakePair();
  ASSERT_TRUE(kg::SaveDatasetPair(pair, dir_.string()).ok());
  const std::string attr_path = (dir_ / "attr_triples_2").string();
  std::ofstream(attr_path, std::ios::trunc)
      << "\x01\x02garbage bytes with no tabs\n";

  datagen::DatasetPair loaded;
  const Status status = kg::LoadDatasetPair(dir_.string(), &loaded);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(attr_path + ":1"), std::string::npos)
      << status.ToString();
}

TEST(LshBlockerTest, SelfQueryFindsSelf) {
  Rng rng(3);
  math::Matrix emb(100, 16);
  emb.FillUniform(rng, 1.0f);
  align::LshBlocker blocker(16, 10, 4, 7);
  blocker.Index(emb);
  size_t found_self = 0;
  for (size_t i = 0; i < emb.rows(); ++i) {
    const auto candidates = blocker.Candidates(emb.Row(i));
    for (int c : candidates) {
      if (c == static_cast<int>(i)) {
        ++found_self;
        break;
      }
    }
  }
  // A vector always hashes into its own buckets.
  EXPECT_EQ(found_self, emb.rows());
}

TEST(LshBlockerTest, CandidateSetsAreMuchSmallerThanFullSpace) {
  Rng rng(3);
  math::Matrix emb(500, 16);
  emb.FillUniform(rng, 1.0f);
  align::LshBlocker blocker(16, 12, 2, 7);
  blocker.Index(emb);
  size_t total = 0;
  for (size_t i = 0; i < 100; ++i) {
    total += blocker.Candidates(emb.Row(i)).size();
  }
  EXPECT_LT(total / 100, 250u);  // Far below the full 500.
}

TEST(BlockedGreedyMatchTest, NearExactOnWellSeparatedData) {
  // Identical source/target embeddings: blocked matching must recover the
  // identity mapping for (almost) every row; tolerate tiny recall loss.
  Rng rng(3);
  math::Matrix emb(200, 32);
  emb.FillUniform(rng, 1.0f);
  for (size_t r = 0; r < emb.rows(); ++r) math::NormalizeL2(emb.Row(r));
  const auto match = align::BlockedGreedyMatch(emb, emb, 10, 4, 7);
  size_t correct = 0;
  for (size_t i = 0; i < match.size(); ++i) {
    if (match[i] == static_cast<int>(i)) ++correct;
  }
  EXPECT_GT(correct, 195u);
}

}  // namespace
}  // namespace openea
