#include <gtest/gtest.h>

#include <limits>

#include "src/align/inference.h"
#include "src/align/similarity.h"

namespace openea::align {
namespace {

math::Matrix FromRows(std::vector<std::vector<float>> rows) {
  math::Matrix m(rows.size(), rows.empty() ? 0 : rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::copy(rows[i].begin(), rows[i].end(), m.Row(i).begin());
  }
  return m;
}

TEST(SimilarityMatrixTest, CosineDiagonalForIdenticalSets) {
  math::Matrix emb = FromRows({{1, 0}, {0, 1}});
  const auto sim = SimilarityMatrix(emb, emb, DistanceMetric::kCosine);
  EXPECT_NEAR(sim.At(0, 0), 1.0f, 1e-6);
  EXPECT_NEAR(sim.At(0, 1), 0.0f, 1e-6);
  EXPECT_NEAR(sim.At(1, 1), 1.0f, 1e-6);
}

TEST(SimilarityMatrixTest, EuclideanAndManhattanAreNegatedDistances) {
  math::Matrix a = FromRows({{0, 0}});
  math::Matrix b = FromRows({{3, 4}});
  EXPECT_FLOAT_EQ(SimilarityMatrix(a, b, DistanceMetric::kEuclidean).At(0, 0),
                  -5.0f);
  EXPECT_FLOAT_EQ(SimilarityMatrix(a, b, DistanceMetric::kManhattan).At(0, 0),
                  -7.0f);
  EXPECT_FLOAT_EQ(SimilarityMatrix(b, b, DistanceMetric::kInner).At(0, 0),
                  25.0f);
}

TEST(CslsTest, PenalizesHubs) {
  // Column 0 is a hub: similar to both sources. Column 1 matches source 1
  // only. CSLS should flip source 1's preference to column 1.
  math::Matrix sim = FromRows({{0.9f, 0.1f}, {0.8f, 0.75f}});
  auto greedy_before = GreedyMatch(sim);
  EXPECT_EQ(greedy_before[1], 0);  // Hub wins before CSLS.
  ApplyCsls(sim, 1);
  auto greedy_after = GreedyMatch(sim);
  EXPECT_EQ(greedy_after[0], 0);
  EXPECT_EQ(greedy_after[1], 1);  // Hub penalized after CSLS.
}

TEST(CslsTest, ClampsNeighborhoodPerDirectionOnAsymmetricMatrix) {
  // 2 x 4 with k = 3: the source neighborhood draws from 4 columns (take 3)
  // while the target neighborhood only has 2 rows (take 2). A single
  // min(k, rows) clamp for both directions would shrink psi_src to 2 values.
  math::Matrix sim = FromRows({{1.0f, 0.5f, 0.25f, 0.0f},
                               {0.0f, 1.0f, 0.5f, 0.25f}});
  const math::Matrix orig = sim;
  ApplyCsls(sim, 3);
  const float psi_src = (1.0f + 0.5f + 0.25f) / 3.0f;  // Same for both rows.
  const float psi_tgt[4] = {(1.0f + 0.0f) / 2.0f, (1.0f + 0.5f) / 2.0f,
                            (0.5f + 0.25f) / 2.0f, (0.25f + 0.0f) / 2.0f};
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(sim.At(i, j),
                      2.0f * orig.At(i, j) - psi_src - psi_tgt[j])
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(CslsTest, NoOpOnEmpty) {
  math::Matrix empty;
  ApplyCsls(empty, 3);  // Must not crash.
  EXPECT_EQ(empty.rows(), 0u);
}

TEST(GreedyMatchTest, PicksRowArgmax) {
  const auto sim = FromRows({{0.1f, 0.9f}, {0.9f, 0.8f}});
  const auto match = GreedyMatch(sim);
  EXPECT_EQ(match[0], 1);
  EXPECT_EQ(match[1], 0);
}

TEST(GreedyMatchTest, AllowsConflicts) {
  const auto sim = FromRows({{0.9f, 0.1f}, {0.8f, 0.2f}});
  const auto match = GreedyMatch(sim);
  EXPECT_EQ(match[0], 0);
  EXPECT_EQ(match[1], 0);  // Both choose the same target: greedy allows it.
}

TEST(GreedyMatchTest, SkipsNanEntriesDeterministically) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const auto sim = FromRows({{nan, 0.5f, 0.2f},
                             {0.3f, nan, 0.7f},
                             {nan, nan, nan}});
  const auto match = GreedyMatch(sim);
  EXPECT_EQ(match[0], 1);   // NaN leader skipped, best finite wins.
  EXPECT_EQ(match[1], 2);
  EXPECT_EQ(match[2], -1);  // All-NaN row stays unmatched.
}

TEST(StableMarriageTest, ResolvesConflictsStably) {
  // Classic instance: greedy would double-assign column 0.
  const auto sim = FromRows({{0.9f, 0.1f}, {0.8f, 0.7f}});
  const auto match = StableMarriage(sim);
  EXPECT_EQ(match[0], 0);  // Row 0 preferred by column 0 (0.9 > 0.8).
  EXPECT_EQ(match[1], 1);  // Row 1 settles for column 1.
}

TEST(StableMarriageTest, NoBlockingPairProperty) {
  // Property check on a random-ish matrix: verify no blocking pair exists.
  const auto sim = FromRows({{0.3f, 0.9f, 0.2f},
                             {0.8f, 0.85f, 0.1f},
                             {0.4f, 0.5f, 0.6f}});
  const auto match = StableMarriage(sim);
  std::vector<int> col_of_row = match;
  std::vector<int> row_of_col(3, -1);
  for (int i = 0; i < 3; ++i) {
    if (match[i] >= 0) row_of_col[match[i]] = i;
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (col_of_row[i] == j) continue;
      const bool row_prefers =
          col_of_row[i] == -1 || sim.At(i, j) > sim.At(i, col_of_row[i]);
      const bool col_prefers =
          row_of_col[j] == -1 || sim.At(i, j) > sim.At(row_of_col[j], j);
      EXPECT_FALSE(row_prefers && col_prefers)
          << "blocking pair (" << i << "," << j << ")";
    }
  }
}

TEST(StableMarriageTest, TiedSimilaritiesBreakTowardLowerColumn) {
  // All similarities tie, so the matching is decided purely by the
  // tie-break rule (column index): the identity permutation. Without the
  // explicit tie-break the result depended on std::sort's treatment of
  // equal keys.
  const auto sim = FromRows({{0.5f, 0.5f, 0.5f},
                             {0.5f, 0.5f, 0.5f},
                             {0.5f, 0.5f, 0.5f}});
  const std::vector<int> expected = {0, 1, 2};
  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(StableMarriage(sim), expected) << "run " << run;
  }
  // Partial ties: row 1 strictly prefers column 2; rows 0 and 2 tie
  // everywhere and fill the remaining columns in index order.
  const auto partial = FromRows({{0.5f, 0.5f, 0.5f},
                                 {0.5f, 0.5f, 0.9f},
                                 {0.5f, 0.5f, 0.5f}});
  EXPECT_EQ(StableMarriage(partial), (std::vector<int>{0, 2, 1}));
}

TEST(KuhnMunkresTest, FindsGlobalOptimum) {
  // Greedy total = 0.9 + 0.2 = 1.1 (rows pick col 0 then col 1 forced);
  // optimal = 0.8 + 0.7 = 1.5.
  const auto sim = FromRows({{0.9f, 0.7f}, {0.8f, 0.2f}});
  const auto match = KuhnMunkres(sim);
  EXPECT_EQ(match[0], 1);
  EXPECT_EQ(match[1], 0);
}

TEST(KuhnMunkresTest, IsPermutationOnSquare) {
  const auto sim = FromRows({{0.3f, 0.9f, 0.2f},
                             {0.8f, 0.85f, 0.1f},
                             {0.4f, 0.5f, 0.6f}});
  const auto match = KuhnMunkres(sim);
  std::vector<bool> used(3, false);
  for (int j : match) {
    ASSERT_GE(j, 0);
    ASSERT_LT(j, 3);
    EXPECT_FALSE(used[j]);
    used[j] = true;
  }
}

TEST(InferAlignmentTest, DispatchesAllStrategies) {
  const auto sim = FromRows({{0.9f, 0.1f}, {0.2f, 0.8f}});
  for (auto strategy :
       {InferenceStrategy::kGreedy, InferenceStrategy::kGreedyCsls,
        InferenceStrategy::kStableMarriage,
        InferenceStrategy::kStableMarriageCsls,
        InferenceStrategy::kKuhnMunkres}) {
    const auto match = InferAlignment(sim, strategy);
    EXPECT_EQ(match[0], 0) << InferenceStrategyName(strategy);
    EXPECT_EQ(match[1], 1) << InferenceStrategyName(strategy);
  }
}

}  // namespace
}  // namespace openea::align
