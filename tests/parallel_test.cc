// Tests for the parallel compute core: ParallelFor edge cases, the ordered
// reduction, shard RNG forking, and the determinism contract — similarity,
// ranking, and sharded training must be bit-identical at 1, 2, and 8
// threads (DESIGN.md, "Compute core").

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

#include "src/align/similarity.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/common/telemetry.h"
#include "src/embedding/triple_model.h"
#include "src/eval/metrics.h"
#include "src/interaction/trainer.h"
#include "src/math/embedding_table.h"
#include "src/math/matrix.h"

namespace openea {
namespace {

/// Restores the global thread count on scope exit; the gtest binary shares
/// one process, so tests must not leak their thread setting.
struct ThreadGuard {
  int saved = Threads();
  ~ThreadGuard() { SetThreads(saved); }
};

TEST(ParallelForTest, EmptyRangeNeverInvokesFn) {
  ThreadGuard guard;
  SetThreads(8);
  bool called = false;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { called = true; });
  ParallelFor(7, 3, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, GrainLargerThanRangeYieldsSingleChunk) {
  ThreadGuard guard;
  SetThreads(8);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> calls;
  ParallelFor(3, 10, 100, [&](size_t lo, size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    calls.emplace_back(lo, hi);
  });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, 3u);
  EXPECT_EQ(calls[0].second, 10u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  SetThreads(8);
  const size_t n = 10'000;
  std::vector<int> hits(n, 0);  // Chunks are disjoint: no data race.
  ParallelFor(0, n, 7, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelForTest, AutoGrainYieldsAtLeastFourChunksPerWorker) {
  ThreadGuard guard;
  // Regression for the auto-grain heuristic: ceil division could leave
  // workers with ~3 chunks each (range 100 / 8 threads gave 25 chunks for
  // a 32-chunk target). The floor guarantees >= min(range, 4 * threads).
  for (const auto& [range, threads] : std::vector<std::pair<size_t, int>>{
           {100, 8}, {33, 8}, {1'000, 4}, {31, 8}, {4, 2}}) {
    SetThreads(threads);
    std::atomic<size_t> chunks{0};
    std::atomic<size_t> covered{0};
    ParallelFor(0, range, 0, [&](size_t lo, size_t hi) {
      ++chunks;
      covered += hi - lo;
    });
    const size_t want =
        std::min(range, static_cast<size_t>(threads) * 4);
    EXPECT_GE(chunks.load(), want) << "range " << range << " threads "
                                   << threads;
    EXPECT_EQ(covered.load(), range);
  }
}

TEST(ParallelForTest, AutoGrainJobObservesImbalanceGauge) {
  ThreadGuard guard;
  SetThreads(4);
  telemetry::ResetForTesting();
  telemetry::SetCollectForTesting(true);
  std::atomic<size_t> chunks{0};
  ParallelFor(0, 64, 0, [&](size_t lo, size_t hi) {
    ++chunks;
    volatile float sink = 0.0f;
    for (size_t i = lo; i < hi; ++i) sink += static_cast<float>(i);
    (void)sink;
  });
  const telemetry::MetricsSnapshot snap = telemetry::SnapshotMetrics();
  telemetry::SetCollectForTesting(false);
  telemetry::ResetForTesting();
  ASSERT_EQ(snap.counters.count("parallel/chunks"), 1u);
  EXPECT_EQ(snap.counters.at("parallel/chunks"), chunks.load());
  EXPECT_GE(snap.counters.at("parallel/chunks"), 16u);  // 4 per worker.
  // Every parallel job with nonzero work must observe the imbalance
  // histogram exactly once.
  ASSERT_EQ(snap.histograms.count("parallel/chunk_imbalance"), 1u);
  EXPECT_EQ(snap.histograms.at("parallel/chunk_imbalance").count, 1u);
  // max/mean ratio is >= 1 by construction.
  EXPECT_GE(snap.histograms.at("parallel/chunk_imbalance").Quantile(0.0),
            0.0);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadGuard guard;
  SetThreads(4);
  std::atomic<size_t> inner_iterations{0};
  std::atomic<bool> saw_worker_flag{true};
  ParallelFor(0, 8, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      if (!InParallelWorker()) saw_worker_flag = false;
      ParallelFor(0, 100, 10, [&](size_t ilo, size_t ihi) {
        inner_iterations += ihi - ilo;
      });
    }
  });
  EXPECT_EQ(inner_iterations.load(), 800u);
  EXPECT_TRUE(saw_worker_flag.load());
  EXPECT_FALSE(InParallelWorker());  // Flag restored on the caller.
}

TEST(ParallelThreadsTest, ZeroSelectsHardwareThreads) {
  ThreadGuard guard;
  SetThreads(0);
  EXPECT_EQ(Threads(), HardwareThreads());
  EXPECT_GE(Threads(), 1);
  SetThreads(-3);
  EXPECT_EQ(Threads(), 1);
  SetThreads(5);
  EXPECT_EQ(Threads(), 5);
}

TEST(ParallelReduceOrderedTest, BitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const size_t n = 5'000;
  auto reduce = [&](int threads) {
    SetThreads(threads);
    return ParallelReduceOrdered<float>(
        0, n, 64, 0.0f,
        [](size_t lo, size_t hi) {
          float s = 0.0f;
          for (size_t i = lo; i < hi; ++i) {
            s += 1.0f / static_cast<float>(i + 1);
          }
          return s;
        },
        [](float acc, float partial) { return acc + partial; });
  };
  const float serial = reduce(1);
  EXPECT_EQ(serial, reduce(2));
  EXPECT_EQ(serial, reduce(8));
  EXPECT_NEAR(serial, 9.0945f, 0.01f);  // Harmonic number H_5000.
}

TEST(RngForkTest, ShardForkDoesNotAdvanceParent) {
  Rng forked(5);
  Rng untouched(5);
  const Rng child = forked.Fork(3);
  (void)child;
  EXPECT_EQ(forked.NextU64(), untouched.NextU64());
}

TEST(RngForkTest, ShardForkIsStableAndDistinctPerShard) {
  const Rng parent(5);
  std::vector<uint64_t> first_draws;
  for (uint64_t s = 0; s < 8; ++s) {
    Rng once = parent.Fork(s);
    Rng twice = parent.Fork(s);
    const uint64_t draw = once.NextU64();
    EXPECT_EQ(draw, twice.NextU64()) << "shard " << s;
    first_draws.push_back(draw);
  }
  for (size_t a = 0; a < first_draws.size(); ++a) {
    for (size_t b = a + 1; b < first_draws.size(); ++b) {
      EXPECT_NE(first_draws[a], first_draws[b]) << a << " vs " << b;
    }
  }
}

math::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  math::Matrix m(rows, cols);
  m.FillUniform(rng, 1.0f);
  return m;
}

TEST(DeterminismTest, SimilarityMatrixAndCslsBitIdenticalAcrossThreads) {
  ThreadGuard guard;
  const auto emb1 = RandomMatrix(90, 24, 1);
  const auto emb2 = RandomMatrix(90, 24, 2);
  auto run = [&](int threads) {
    SetThreads(threads);
    math::Matrix sim = align::SimilarityMatrix(
        emb1, emb2, align::DistanceMetric::kCosine);
    align::ApplyCsls(sim, 10);
    return sim;
  };
  const math::Matrix serial = run(1);
  const std::vector<float> want(serial.Data().begin(), serial.Data().end());
  for (int threads : {2, 8}) {
    const math::Matrix parallel = run(threads);
    const std::vector<float> got(parallel.Data().begin(),
                                 parallel.Data().end());
    ASSERT_EQ(got, want) << threads << " threads";
  }
}

TEST(DeterminismTest, EvaluateRankingBitIdenticalAcrossThreads) {
  ThreadGuard guard;
  core::AlignmentModel model;
  model.emb1 = RandomMatrix(120, 16, 3);
  model.emb2 = RandomMatrix(120, 16, 4);
  kg::Alignment pairs;
  for (size_t i = 0; i < 120; ++i) {
    pairs.push_back({static_cast<kg::EntityId>(i),
                     static_cast<kg::EntityId>(i)});
  }
  auto run = [&](int threads) {
    SetThreads(threads);
    return eval::EvaluateRanking(model, pairs,
                                 align::DistanceMetric::kCosine);
  };
  const auto serial = run(1);
  for (int threads : {2, 8}) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.hits1, serial.hits1) << threads << " threads";
    EXPECT_EQ(parallel.hits5, serial.hits5) << threads << " threads";
    EXPECT_EQ(parallel.mr, serial.mr) << threads << " threads";
    EXPECT_EQ(parallel.mrr, serial.mrr) << threads << " threads";
  }
}

std::vector<kg::Triple> RandomTriples(size_t count, size_t entities,
                                      size_t relations, uint64_t seed) {
  Rng rng(seed);
  std::vector<kg::Triple> triples(count);
  for (auto& t : triples) {
    t.head = static_cast<kg::EntityId>(rng.NextBounded(entities));
    t.relation = static_cast<kg::RelationId>(rng.NextBounded(relations));
    t.tail = static_cast<kg::EntityId>(rng.NextBounded(entities));
  }
  return triples;
}

std::vector<float> FlattenTable(const math::EmbeddingTable& table) {
  std::vector<float> flat;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const auto row = table.Row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

TEST(DeterminismTest, ShardedTrainEpochBitIdenticalAcrossThreads) {
  ThreadGuard guard;
  // > 2 shards of 256 positives so the shard-parallel draw path matters.
  const auto triples = RandomTriples(600, 80, 10, 9);
  auto run = [&](int threads) {
    SetThreads(threads);
    Rng model_rng(11);
    auto model = embedding::CreateTripleModel(
        embedding::TripleModelKind::kTransE, 80, 10,
        embedding::TripleModelOptions{}, model_rng);
    Rng epoch_rng(42);
    const float loss =
        interaction::TrainEpoch(*model, triples, 2, epoch_rng, nullptr,
                                interaction::EpochMode::kSharded);
    return std::make_pair(loss, FlattenTable(model->entity_table()));
  };
  const auto serial = run(1);
  for (int threads : {2, 8}) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.first, serial.first) << threads << " threads";
    ASSERT_EQ(parallel.second, serial.second) << threads << " threads";
  }
}

TEST(DeterminismTest, ShardedCalibrateEpochBitIdenticalAcrossThreads) {
  ThreadGuard guard;
  std::vector<std::pair<kg::EntityId, kg::EntityId>> pairs;
  for (kg::EntityId i = 0; i < 300; ++i) pairs.push_back({i, i + 300});
  auto run = [&](int threads) {
    SetThreads(threads);
    Rng init_rng(13);
    math::EmbeddingTable entities(600, 16, math::InitScheme::kUnit,
                                  init_rng);
    Rng epoch_rng(42);
    const float loss = interaction::CalibrateEpoch(
        entities, pairs, 0.05f, 1.5f, 3, epoch_rng,
        interaction::EpochMode::kSharded);
    return std::make_pair(loss, FlattenTable(entities));
  };
  const auto serial = run(1);
  for (int threads : {2, 8}) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.first, serial.first) << threads << " threads";
    ASSERT_EQ(parallel.second, serial.second) << threads << " threads";
  }
}

}  // namespace
}  // namespace openea
