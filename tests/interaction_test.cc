#include <unordered_set>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/interaction/bootstrapping.h"
#include "src/interaction/trainer.h"
#include "src/interaction/unified_kg.h"
#include "src/math/vec.h"

namespace openea::interaction {
namespace {

/// Two tiny KGs: each a chain of 4 entities with one relation.
struct Fixture {
  kg::KnowledgeGraph kg1, kg2;
  core::AlignmentTask task;
  kg::Alignment seeds;

  Fixture() {
    for (int i = 0; i < 4; ++i) kg1.AddEntity("a" + std::to_string(i));
    for (int i = 0; i < 5; ++i) kg2.AddEntity("b" + std::to_string(i));
    const auto r1 = kg1.AddRelation("r");
    const auto r2 = kg2.AddRelation("s");
    kg1.AddTriple(0, r1, 1);
    kg1.AddTriple(1, r1, 2);
    kg1.AddTriple(2, r1, 3);
    kg2.AddTriple(0, r2, 1);
    kg2.AddTriple(1, r2, 2);
    kg2.AddTriple(2, r2, 3);
    kg2.AddTriple(3, r2, 4);
    kg1.BuildIndex();
    kg2.BuildIndex();
    seeds = {{0, 0}, {1, 1}};
    task.kg1 = &kg1;
    task.kg2 = &kg2;
    task.train = seeds;
    task.valid = {{2, 2}};
    task.test = {{3, 3}};
  }
};

TEST(UnifiedKgTest, NoneModeKeepsSeparateIds) {
  Fixture fx;
  const UnifiedKg u = BuildUnifiedKg(fx.task, CombinationMode::kNone,
                                     fx.seeds);
  EXPECT_EQ(u.num_entities, 9u);
  EXPECT_EQ(u.num_relations, 2u);
  EXPECT_EQ(u.triples.size(), 7u);
  EXPECT_EQ(u.map2[0], 4);  // Offset by |E1|.
  // Seeds map to distinct ids.
  EXPECT_NE(u.merged_seeds[0].first, u.merged_seeds[0].second);
}

TEST(UnifiedKgTest, SharingMergesSeedIds) {
  Fixture fx;
  const UnifiedKg u = BuildUnifiedKg(fx.task, CombinationMode::kSharing,
                                     fx.seeds);
  EXPECT_EQ(u.map2[0], 0);  // Shared with kg1 entity 0.
  EXPECT_EQ(u.map2[1], 1);
  EXPECT_EQ(u.map2[2], 4 + 2);  // Unshared stays offset.
  // KG2 triples touching shared entities now reference kg1 ids.
  bool found = false;
  for (const kg::Triple& t : u.triples) {
    if (t.relation == 1 && t.head == 0 && t.tail == 1) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(UnifiedKgTest, SwappingAddsExtraTriples) {
  Fixture fx;
  const UnifiedKg none = BuildUnifiedKg(fx.task, CombinationMode::kNone,
                                        fx.seeds);
  const UnifiedKg swap = BuildUnifiedKg(fx.task, CombinationMode::kSwapping,
                                        fx.seeds);
  EXPECT_GT(swap.triples.size(), none.triples.size());
  // Relations are never merged.
  EXPECT_EQ(swap.num_relations, 2u);
}

TEST(SwappedTriplesTest, SubstitutesBothDirections) {
  std::vector<kg::Triple> base = {{0, 0, 1}};
  const auto swapped = SwappedTriples(base, {{0, 5}});
  // Head 0 -> 5 produces (5, 0, 1).
  ASSERT_EQ(swapped.size(), 1u);
  EXPECT_EQ(swapped[0].head, 5);
  EXPECT_EQ(swapped[0].tail, 1);
}

TEST(CalibrateEpochTest, PullsPairsTogether) {
  Rng rng(3);
  math::EmbeddingTable table(10, 8, math::InitScheme::kUnit, rng);
  const float before = math::EuclideanDistance(table.Row(0), table.Row(5));
  std::vector<std::pair<kg::EntityId, kg::EntityId>> pairs = {{0, 5}};
  for (int i = 0; i < 50; ++i) {
    CalibrateEpoch(table, pairs, 0.1f, 2.0f, 0, rng);
  }
  const float after = math::EuclideanDistance(table.Row(0), table.Row(5));
  EXPECT_LT(after, before * 0.5f);
}

TEST(ProposeAlignmentTest, FindsIdenticalEmbeddings) {
  Rng rng(3);
  math::Matrix emb1(6, 8), emb2(6, 8);
  emb1.FillUniform(rng, 1.0f);
  for (size_t i = 0; i < emb1.size(); ++i) {
    emb2.Data()[i] = emb1.Data()[i];
  }
  BootstrapOptions options;
  options.threshold = 0.9f;
  const kg::Alignment proposals =
      ProposeAlignment(emb1, emb2, {}, {}, options);
  EXPECT_EQ(proposals.size(), 6u);
  for (const auto& p : proposals) EXPECT_EQ(p.left, p.right);
}

TEST(ProposeAlignmentTest, RespectsUsedSetsAndThreshold) {
  Rng rng(3);
  math::Matrix emb1(4, 8), emb2(4, 8);
  emb1.FillUniform(rng, 1.0f);
  for (size_t i = 0; i < emb1.size(); ++i) emb2.Data()[i] = emb1.Data()[i];
  BootstrapOptions options;
  options.threshold = 0.9f;
  std::unordered_set<kg::EntityId> used1 = {0, 1};
  std::unordered_set<kg::EntityId> used2 = {0, 1};
  const kg::Alignment proposals =
      ProposeAlignment(emb1, emb2, used1, used2, options);
  EXPECT_EQ(proposals.size(), 2u);
  for (const auto& p : proposals) {
    EXPECT_GE(p.left, 2);
    EXPECT_GE(p.right, 2);
  }
}

TEST(ProposeAlignmentTest, EnforcesOneToOne) {
  // Two sources both closest to the same target; only one may take it.
  math::Matrix emb1(2, 2), emb2(2, 2);
  emb1.At(0, 0) = 1.0f;
  emb1.At(1, 0) = 0.95f;
  emb1.At(1, 1) = 0.05f;
  emb2.At(0, 0) = 1.0f;
  emb2.At(1, 1) = 1.0f;
  BootstrapOptions options;
  options.threshold = 0.0f;
  options.mutual = false;
  const kg::Alignment proposals = ProposeAlignment(emb1, emb2, {}, {},
                                                   options);
  std::unordered_set<kg::EntityId> rights;
  for (const auto& p : proposals) {
    EXPECT_TRUE(rights.insert(p.right).second);
  }
}

TEST(EditAugmentedAlignmentTest, StrongerPairEvictsWeaker) {
  math::Matrix emb1(2, 2), emb2(2, 2);
  // Pair (0,0) weak, pair (1,0) strong.
  emb1.At(0, 0) = 1.0f;
  emb1.At(0, 1) = 1.0f;
  emb1.At(1, 0) = 1.0f;
  emb2.At(0, 0) = 1.0f;
  emb2.At(1, 1) = 1.0f;
  kg::Alignment augmented = {{0, 0}};
  EditAugmentedAlignment(augmented, {{1, 0}}, emb1, emb2);
  ASSERT_EQ(augmented.size(), 1u);
  EXPECT_EQ(augmented[0].left, 1);  // The stronger claim won.
}

TEST(EvaluateAugmentedTest, PrecisionRecallMath) {
  Fixture fx;
  kg::Alignment augmented = {{2, 2}, {3, 0}};  // One correct, one wrong.
  const core::IterationStat stat = EvaluateAugmented(augmented, fx.task, 4);
  EXPECT_EQ(stat.iteration, 4);
  EXPECT_DOUBLE_EQ(stat.precision, 0.5);
  EXPECT_DOUBLE_EQ(stat.recall, 0.5);  // Reference = valid + test = 2 pairs.
}

TEST(PathCompositionTest, PullsCompositionTowardDirectRelation) {
  // Triangle: e0 -r0-> e1 -r1-> e2 and a direct e0 -r2-> e2.
  std::vector<kg::Triple> triples = {{0, 0, 1}, {1, 1, 2}, {0, 2, 2}};
  Rng rng(3);
  math::EmbeddingTable relations(3, 8, math::InitScheme::kUnit, rng);
  auto composition_error = [&]() {
    float err = 0.0f;
    for (size_t i = 0; i < 8; ++i) {
      const float d = relations.Row(0)[i] + relations.Row(1)[i] -
                      relations.Row(2)[i];
      err += d * d;
    }
    return err;
  };
  const float before = composition_error();
  for (int i = 0; i < 100; ++i) {
    PathCompositionEpoch(relations, triples, 3, 0.1f, 10, rng);
  }
  EXPECT_LT(composition_error(), before * 0.5f);
}

}  // namespace
}  // namespace openea::interaction
