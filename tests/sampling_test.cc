#include <gtest/gtest.h>

#include "src/datagen/kg_pair.h"
#include "src/kg/graph_stats.h"
#include "src/sampling/samplers.h"

namespace openea::sampling {
namespace {

datagen::DatasetPair MakeSourcePair() {
  datagen::SyntheticKgConfig config;
  config.num_entities = 800;
  config.avg_degree = 5.5;
  config.num_relations = 25;
  config.num_attributes = 18;
  config.vocabulary_size = 250;
  config.seed = 77;
  return GenerateDatasetPair(config, datagen::HeterogeneityProfile::EnFr(),
                             77);
}

TEST(IdsTest, ReachesTargetSizeWithGoodJs) {
  const auto source = MakeSourcePair();
  IdsOptions options;
  options.target_size = 300;
  options.mu = 30;
  options.seed = 3;
  const auto sample = IterativeDegreeSampling(source, options);
  // Size lands on the target, up to the 2% isolate-cleanup allowance.
  EXPECT_LE(sample.kg1.NumEntities(), 300u);
  EXPECT_GE(sample.kg1.NumEntities(), 294u);
  EXPECT_EQ(sample.kg1.NumEntities(), sample.kg2.NumEntities());
  EXPECT_EQ(sample.reference.size(), sample.kg1.NumEntities());

  const auto q = EvaluateSampleQuality(sample, source);
  // Degree distribution should stay close to the source (paper: <= 5%;
  // at our much smaller scales a slightly looser bound is statistically
  // appropriate).
  EXPECT_LT(q.js1, 0.10);
  EXPECT_LT(q.js2, 0.10);
  // Average degree should be in the same ballpark as the source.
  EXPECT_NEAR(q.avg_degree1, source.kg1.AverageDegree(), 2.0);
}

TEST(IdsTest, SampleIsSubsetWithConsistentAlignment) {
  const auto source = MakeSourcePair();
  IdsOptions options;
  options.target_size = 300;
  options.mu = 30;
  options.seed = 3;
  const auto sample = IterativeDegreeSampling(source, options);
  // Every sampled pair's names must match an original reference pair.
  std::unordered_set<std::string> ref_keys;
  for (const auto& ap : source.reference) {
    ref_keys.insert(source.kg1.entities().Name(ap.left) + "|" +
                    source.kg2.entities().Name(ap.right));
  }
  for (const auto& ap : sample.reference) {
    const std::string key = sample.kg1.entities().Name(ap.left) + "|" +
                            sample.kg2.entities().Name(ap.right);
    EXPECT_TRUE(ref_keys.count(key) > 0) << key;
  }
}

TEST(RasTest, ProducesSparserLowerQualitySample) {
  const auto source = MakeSourcePair();
  const auto ras = RandomAlignmentSampling(source, 300, 3);
  EXPECT_EQ(ras.reference.size(), 300u);
  const auto q = EvaluateSampleQuality(ras, source);
  // RAS destroys connectivity (Table 3): much lower degree, many isolates.
  EXPECT_LT(q.avg_degree1, source.kg1.AverageDegree() / 2.0);
  EXPECT_GT(q.isolated1, 0.2);
}

TEST(PrsTest, BetterThanRasWorseThanIds) {
  const auto source = MakeSourcePair();
  const auto ras = EvaluateSampleQuality(
      RandomAlignmentSampling(source, 300, 3), source);
  const auto prs =
      EvaluateSampleQuality(PageRankSampling(source, 300, 3), source);
  IdsOptions options;
  options.target_size = 300;
  options.mu = 30;
  options.seed = 3;
  const auto ids =
      EvaluateSampleQuality(IterativeDegreeSampling(source, options), source);
  // The Table 3 ordering: RAS < PRS < IDS on average degree; IDS has the
  // fewest isolates.
  EXPECT_GT(prs.avg_degree1, ras.avg_degree1);
  EXPECT_GT(ids.avg_degree1, prs.avg_degree1);
  EXPECT_LT(ids.isolated1, 0.02);
  EXPECT_LT(ids.js1, prs.js1);
}

TEST(DensifyTest, DoublesAverageDegree) {
  const auto source = MakeSourcePair();
  const double before = source.kg1.AverageDegree();
  const auto dense = DensifyPair(source, 2.0, 5);
  EXPECT_GE(dense.kg1.AverageDegree(), before * 1.6);
  EXPECT_LT(dense.kg1.NumEntities(), source.kg1.NumEntities());
  // Alignment stays 1-to-1 over surviving entities.
  std::unordered_set<kg::EntityId> lefts;
  for (const auto& ap : dense.reference) {
    EXPECT_TRUE(lefts.insert(ap.left).second);
  }
}

TEST(RestrictPairTest, EmptySetsGiveEmptyPair) {
  const auto source = MakeSourcePair();
  const auto empty = RestrictPair(source, {}, {});
  EXPECT_EQ(empty.kg1.NumEntities(), 0u);
  EXPECT_EQ(empty.reference.size(), 0u);
}

}  // namespace
}  // namespace openea::sampling
