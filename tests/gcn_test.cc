#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/embedding/gcn.h"
#include "src/math/vec.h"

namespace openea::embedding {
namespace {

std::vector<GcnEdge> RingEdges(int n) {
  std::vector<GcnEdge> edges;
  for (int i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n, 1.0f});
  return edges;
}

TEST(GcnEncoderTest, ForwardShapeAndFinite) {
  Rng rng(3);
  GcnOptions options;
  options.dim = 8;
  GcnEncoder gcn(10, RingEdges(10), options, rng);
  const math::Matrix& out = gcn.Forward();
  EXPECT_EQ(out.rows(), 10u);
  EXPECT_EQ(out.cols(), 8u);
  for (float v : out.Data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(GcnEncoderTest, NeighborsSmootheTowardEachOther) {
  // After propagation, adjacent nodes should be more similar than distant
  // ones on a path graph (the defining GCN behaviour).
  Rng rng(3);
  GcnOptions options;
  options.dim = 16;
  options.layers = 2;
  std::vector<GcnEdge> path;
  for (int i = 0; i < 19; ++i) path.push_back({i, i + 1, 1.0f});
  GcnEncoder gcn(20, path, options, rng);
  const math::Matrix& out = gcn.Forward();
  const float near = math::CosineSimilarity(out.Row(5), out.Row(6));
  const float far = math::CosineSimilarity(out.Row(0), out.Row(19));
  EXPECT_GT(near, far);
}

TEST(GcnEncoderTest, BackwardReducesSimpleLoss) {
  // Loss: pull node 0's output toward node 5's. Gradient descent through
  // the encoder must reduce it.
  Rng rng(3);
  GcnOptions options;
  options.dim = 8;
  options.learning_rate = 0.1f;
  GcnEncoder gcn(10, RingEdges(10), options, rng);

  auto loss_of = [&](const math::Matrix& out) {
    return math::SquaredEuclideanDistance(out.Row(0), out.Row(5));
  };
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    const math::Matrix& out = gcn.Forward();
    const float loss = loss_of(out);
    if (step == 0) first = loss;
    last = loss;
    math::Matrix grad(out.rows(), out.cols(), 0.0f);
    for (size_t j = 0; j < out.cols(); ++j) {
      const float diff = out.At(0, j) - out.At(5, j);
      grad.At(0, j) = 2.0f * diff;
      grad.At(5, j) = -2.0f * diff;
    }
    gcn.Backward(grad);
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(GcnEncoderTest, HighwayVariantAlsoLearns) {
  Rng rng(3);
  GcnOptions options;
  options.dim = 8;
  options.learning_rate = 0.1f;
  options.highway = true;
  GcnEncoder gcn(10, RingEdges(10), options, rng);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    const math::Matrix& out = gcn.Forward();
    const float loss =
        math::SquaredEuclideanDistance(out.Row(1), out.Row(7));
    if (step == 0) first = loss;
    last = loss;
    math::Matrix grad(out.rows(), out.cols(), 0.0f);
    for (size_t j = 0; j < out.cols(); ++j) {
      const float diff = out.At(1, j) - out.At(7, j);
      grad.At(1, j) = 2.0f * diff;
      grad.At(7, j) = -2.0f * diff;
    }
    gcn.Backward(grad);
  }
  EXPECT_LT(last, first);
}

TEST(GcnEncoderTest, FixedFeaturesStayFixed) {
  Rng rng(3);
  GcnOptions options;
  options.dim = 8;
  options.trainable_features = false;
  GcnEncoder gcn(10, RingEdges(10), options, rng);
  math::Matrix features(10, 8);
  features.FillUniform(rng, 1.0f);
  gcn.SetInputFeatures(features);
  gcn.Forward();
  math::Matrix grad(10, 8, 1.0f);
  gcn.Backward(grad);
  for (size_t i = 0; i < features.size(); ++i) {
    EXPECT_FLOAT_EQ(gcn.input_features().Data()[i], features.Data()[i]);
  }
}

TEST(GcnEncoderTest, TrainableFeaturesMove) {
  Rng rng(3);
  GcnOptions options;
  options.dim = 8;
  options.trainable_features = true;
  GcnEncoder gcn(10, RingEdges(10), options, rng);
  const std::vector<float> before(gcn.input_features().Data().begin(),
                                  gcn.input_features().Data().end());
  gcn.Forward();
  math::Matrix grad(10, 8, 1.0f);
  gcn.Backward(grad);
  const std::vector<float> after(gcn.input_features().Data().begin(),
                                 gcn.input_features().Data().end());
  EXPECT_NE(before, after);
}

}  // namespace
}  // namespace openea::embedding
