// Live-observability suite (`ctest -L observability`), covering the PR's
// whole surface: sliding-window aggregation under a fake clock (rotation,
// expiry, rates), labeled metric names and their Prometheus escaping, the
// text-exposition renderer, concurrent recording (exercised under tsan by
// the sanitizer presets), and three forked end-to-end drivers — align-serve
// over TCP (stats op vs `metrics` op vs GET /metrics agreement),
// align-serve over pipes (request ids in responses, trace spans, and
// slow-request JSON logs), and a CV bench run with --metrics-interval
// emitting parseable heartbeat lines plus a validator-clean JSON document.

#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/checkpoint.h"
#include "src/common/json.h"
#include "src/common/metrics_export.h"
#include "src/common/rng.h"
#include "src/common/telemetry.h"
#include "src/common/trace.h"
#include "src/math/matrix.h"

namespace openea {
namespace {

// ---------------------------------------------------------------------------
// Windowed aggregation under a fake clock.
// ---------------------------------------------------------------------------

double g_fake_seconds = 0.0;
double FakeClock() { return g_fake_seconds; }

class WindowClockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::SetCollectForTesting(true);
    telemetry::ResetForTesting();
    g_fake_seconds = 0.0;
    telemetry::SetWindowClockForTesting(&FakeClock);
  }
  void TearDown() override {
    telemetry::SetWindowClockForTesting(nullptr);
    telemetry::ResetForTesting();
    telemetry::SetCollectForTesting(false);
  }
};

TEST_F(WindowClockTest, BucketsRotateAndExpireDeterministically) {
  telemetry::WindowOptions options;
  options.bucket_seconds = 1.0;
  options.num_buckets = 3;
  options.bounds = {10.0, 20.0, 30.0};
  telemetry::DefineWindow("obs/w", options);

  g_fake_seconds = 0.5;
  telemetry::ObserveWindowed("obs/w", 5.0);
  g_fake_seconds = 1.5;
  telemetry::ObserveWindowed("obs/w", 15.0);

  {
    const auto snap = telemetry::SnapshotMetrics();
    const auto it = snap.windows.find("obs/w");
    ASSERT_NE(it, snap.windows.end());
    const telemetry::WindowSnapshot& w = it->second;
    EXPECT_EQ(w.histogram.count, 2u);
    EXPECT_DOUBLE_EQ(w.histogram.sum, 20.0);
    EXPECT_DOUBLE_EQ(w.histogram.min, 5.0);
    EXPECT_DOUBLE_EQ(w.histogram.max, 15.0);
    // Slots 0 and 1 are live: span = 2 buckets = 2 s.
    EXPECT_DOUBLE_EQ(w.window_seconds, 2.0);
    EXPECT_DOUBLE_EQ(w.rate_per_sec, 1.0);
    EXPECT_DOUBLE_EQ(w.value_rate_per_sec, 10.0);
  }

  // Slot 3 reuses the ring cell of slot 0: the 5.0 observation must be
  // recycled away, and slot 0 itself falls out of the live range.
  g_fake_seconds = 3.2;
  telemetry::ObserveWindowed("obs/w", 25.0);
  {
    const auto snap = telemetry::SnapshotMetrics();
    const telemetry::WindowSnapshot& w = snap.windows.at("obs/w");
    EXPECT_EQ(w.histogram.count, 2u);  // 15 and 25; 5 expired.
    EXPECT_DOUBLE_EQ(w.histogram.min, 15.0);
    EXPECT_DOUBLE_EQ(w.histogram.max, 25.0);
    // Earliest live slot is 1, now slot 3: span = 3 s.
    EXPECT_DOUBLE_EQ(w.window_seconds, 3.0);
    EXPECT_DOUBLE_EQ(w.rate_per_sec, 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(w.value_rate_per_sec, 40.0 / 3.0);
  }

  // Far future: every bucket is stale; the window drains to zero...
  g_fake_seconds = 10.0;
  {
    const auto snap = telemetry::SnapshotMetrics();
    const telemetry::WindowSnapshot& w = snap.windows.at("obs/w");
    EXPECT_EQ(w.histogram.count, 0u);
    EXPECT_DOUBLE_EQ(w.window_seconds, 0.0);
    EXPECT_DOUBLE_EQ(w.rate_per_sec, 0.0);
    // ... while the cumulative histogram of the same name keeps all three.
    EXPECT_EQ(snap.histograms.at("obs/w").count, 3u);
    EXPECT_DOUBLE_EQ(snap.histograms.at("obs/w").sum, 45.0);
  }
}

TEST_F(WindowClockTest, WindowQuantilesUseMergedLiveBuckets) {
  telemetry::WindowOptions options;
  options.bucket_seconds = 1.0;
  options.num_buckets = 60;
  options.bounds = {1.0, 2.0, 4.0, 8.0};
  telemetry::DefineWindow("obs/q", options);
  g_fake_seconds = 100.0;
  for (int i = 0; i < 90; ++i) telemetry::ObserveWindowed("obs/q", 0.5);
  g_fake_seconds = 101.0;
  for (int i = 0; i < 10; ++i) telemetry::ObserveWindowed("obs/q", 6.0);
  const auto snap = telemetry::SnapshotMetrics();
  const telemetry::WindowSnapshot& w = snap.windows.at("obs/q");
  ASSERT_EQ(w.histogram.count, 100u);
  EXPECT_LE(w.histogram.P50(), 1.0);
  EXPECT_GT(w.histogram.P95(), 4.0);
}

// ---------------------------------------------------------------------------
// Labeled names: canonical encoding, escaping, round trip.
// ---------------------------------------------------------------------------

TEST(LabeledNameTest, EncodesCanonicalPrometheusForm) {
  EXPECT_EQ(telemetry::LabeledName("serve/ops", {{"op", "topk"}}),
            "serve/ops{op=\"topk\"}");
  EXPECT_EQ(telemetry::LabeledName("x", {{"a", "1"}, {"b", "2"}}),
            "x{a=\"1\",b=\"2\"}");
}

TEST(LabeledNameTest, EscapesQuotesBackslashesAndNewlines) {
  const std::string nasty = "a\"b\\c\nd";
  EXPECT_EQ(telemetry::EscapeLabelValue(nasty), "a\\\"b\\\\c\\nd");
  const std::string name = telemetry::LabeledName("m", {{"k", nasty}});
  EXPECT_EQ(name, "m{k=\"a\\\"b\\\\c\\nd\"}");
  // Parsing undoes the escaping exactly.
  const telemetry::MetricName parsed = telemetry::ParseMetricName(name);
  EXPECT_EQ(parsed.base, "m");
  ASSERT_EQ(parsed.labels.size(), 1u);
  EXPECT_EQ(parsed.labels[0].first, "k");
  EXPECT_EQ(parsed.labels[0].second, nasty);
}

TEST(LabeledNameTest, MalformedNamesFallBackToOpaqueBase) {
  for (const char* name :
       {"weird{unterminated", "x{no_equals}", "y{k=unquoted}", "z{k=\"v\"",
        "plain_name"}) {
    const telemetry::MetricName parsed = telemetry::ParseMetricName(name);
    EXPECT_EQ(parsed.base, name);
    EXPECT_TRUE(parsed.labels.empty());
  }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.
// ---------------------------------------------------------------------------

TEST(PrometheusTest, SanitizesMetricNames) {
  EXPECT_EQ(telemetry::SanitizeMetricName("serve/latency_ms"),
            "serve_latency_ms");
  EXPECT_EQ(telemetry::SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(telemetry::SanitizeMetricName(""), "_");
  EXPECT_EQ(telemetry::SanitizeMetricName("a-b.c"), "a_b_c");
}

TEST(PrometheusTest, RendersCountersGaugesHistogramsAndWindows) {
  telemetry::SetCollectForTesting(true);
  telemetry::ResetForTesting();
  telemetry::SetWindowClockForTesting(&FakeClock);
  g_fake_seconds = 50.0;

  telemetry::IncrCounter(telemetry::LabeledName("serve/ops", {{"op", "topk"}}),
                         3);
  telemetry::IncrCounter(telemetry::LabeledName("serve/ops", {{"op", "ping"}}));
  telemetry::SetGauge("mem/peak_rss_mb", 12.5);
  telemetry::DefineHistogram("lat/ms", {1.0, 2.0});
  telemetry::Observe("lat/ms", 0.5);
  telemetry::Observe("lat/ms", 1.5);
  telemetry::Observe("lat/ms", 5.0);
  telemetry::WindowOptions options;
  options.bounds = {1.0, 2.0};
  telemetry::DefineWindow("win/ms", options);
  telemetry::ObserveWindowed("win/ms", 1.5);

  const std::string text =
      telemetry::RenderPrometheus(telemetry::SnapshotMetrics());
  // Labeled counter samples share one TYPE declaration of the base.
  EXPECT_NE(text.find("# TYPE serve_ops counter\n"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE serve_ops counter",
                      text.find("# TYPE serve_ops counter") + 1),
            std::string::npos);
  EXPECT_NE(text.find("serve_ops{op=\"topk\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("serve_ops{op=\"ping\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("mem_peak_rss_mb 12.5\n"), std::string::npos);
  // Histogram buckets are cumulative and end in +Inf, sum and count follow.
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_sum 7\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 3\n"), std::string::npos);
  // Windows render as *_window_* gauges.
  EXPECT_NE(text.find("win_ms_window_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("win_ms_window_rate 1\n"), std::string::npos);
  EXPECT_NE(text.find("win_ms_window_seconds 1\n"), std::string::npos);

  telemetry::SetWindowClockForTesting(nullptr);
  telemetry::ResetForTesting();
  telemetry::SetCollectForTesting(false);
}

TEST(PrometheusTest, EscapedLabelValuesSurviveExposition) {
  telemetry::SetCollectForTesting(true);
  telemetry::ResetForTesting();
  telemetry::SetGauge(telemetry::LabeledName("g", {{"k", "a\"b\\c\nd"}}), 1.0);
  const std::string text =
      telemetry::RenderPrometheus(telemetry::SnapshotMetrics());
  EXPECT_NE(text.find("g{k=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos);
  telemetry::ResetForTesting();
  telemetry::SetCollectForTesting(false);
}

TEST(PrometheusTest, HttpResponseFramesTheExposition) {
  telemetry::SetCollectForTesting(true);
  telemetry::ResetForTesting();
  telemetry::IncrCounter("serve/requests", 7);
  const std::string response =
      telemetry::HttpMetricsResponse(telemetry::SnapshotMetrics());
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  const size_t len_at = response.find("Content-Length: ");
  ASSERT_NE(len_at, std::string::npos);
  EXPECT_EQ(static_cast<size_t>(
                std::atoi(response.c_str() + len_at + sizeof("Content-Length: ") - 1)),
            body.size());
  EXPECT_NE(body.find("serve_requests 7\n"), std::string::npos);
  telemetry::ResetForTesting();
  telemetry::SetCollectForTesting(false);
}

// ---------------------------------------------------------------------------
// Concurrent recording (the sanitizer presets run this under tsan).
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, WindowedAndLabeledRecordingIsThreadSafe) {
  telemetry::SetCollectForTesting(true);
  telemetry::ResetForTesting();
  constexpr int kThreads = 4, kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      const std::string op = (t % 2 == 0) ? "even" : "odd";
      for (int i = 0; i < kPerThread; ++i) {
        telemetry::ObserveWindowed("obs/conc", static_cast<double>(i % 10));
        telemetry::IncrCounter(
            telemetry::LabeledName("obs/ops", {{"op", op}}));
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = telemetry::SnapshotMetrics();
  EXPECT_EQ(snap.histograms.at("obs/conc").count,
            static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t labeled = 0;
  for (const auto& [name, value] : snap.counters) {
    if (telemetry::ParseMetricName(name).base == "obs/ops") labeled += value;
  }
  EXPECT_EQ(labeled, static_cast<uint64_t>(kThreads * kPerThread));
  telemetry::ResetForTesting();
  telemetry::SetCollectForTesting(false);
}

// ---------------------------------------------------------------------------
// Trace context propagation.
// ---------------------------------------------------------------------------

TEST(TraceContextTest, ScopedThreadContextRestoresOuterContext) {
  trace::SetThreadContext("");
  EXPECT_EQ(trace::ThreadContext(), "");
  {
    trace::ScopedThreadContext outer("req:r-1");
    EXPECT_EQ(trace::ThreadContext(), "req:r-1");
    {
      trace::ScopedThreadContext inner("fold:3");
      EXPECT_EQ(trace::ThreadContext(), "fold:3");
    }
    EXPECT_EQ(trace::ThreadContext(), "req:r-1");
  }
  EXPECT_EQ(trace::ThreadContext(), "");
  // Over-long contexts truncate at the event payload limit, no overflow.
  trace::SetThreadContext(std::string(100, 'x'));
  EXPECT_EQ(trace::ThreadContext().size(),
            trace::TraceEvent::kMaxContextLength);
  trace::SetThreadContext("");
}

// ---------------------------------------------------------------------------
// Forked end-to-end drivers.
// ---------------------------------------------------------------------------

std::string TempDir() {
  std::string tmpl = ::testing::TempDir() + "observability_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return std::string(dir);
}

std::string WriteCheckpoint(const std::string& dir, size_t rows, size_t dim,
                            uint64_t seed) {
  Rng rng(seed);
  checkpoint::TrainState state;
  state.epoch = 3;
  state.learning_rate = 0.01f;
  state.tables.emplace_back(rows, dim, math::InitScheme::kUniform, rng);
  state.tables.emplace_back(rows, dim, math::InitScheme::kUniform, rng);
  const std::string path = dir + "/model.ckpt";
  EXPECT_TRUE(checkpoint::SaveTrainState(path, state).ok());
  return path;
}

/// Forks `binary` with the given args; stdin/stdout ride on pipes and
/// stderr lands in `stderr_path` (empty = inherit).
class ChildProcess {
 public:
  ChildProcess(const char* binary, std::vector<std::string> args,
               const std::string& stderr_path = "") {
    int to_child[2], from_child[2];
    EXPECT_EQ(::pipe(to_child), 0);
    EXPECT_EQ(::pipe(from_child), 0);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      if (!stderr_path.empty()) {
        const int err =
            ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (err >= 0) ::dup2(err, STDERR_FILENO);
      }
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<char*> argv;
      std::string bin = binary;
      argv.push_back(bin.data());
      for (auto& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::perror("execv");
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
  }

  ~ChildProcess() {
    CloseInput();
    if (out_fd_ >= 0) ::close(out_fd_);
    if (pid_ > 0) ::waitpid(pid_, nullptr, 0);
  }

  void Send(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::write(in_fd_, framed.data(), framed.size()),
              static_cast<ssize_t>(framed.size()));
  }

  void CloseInput() {
    if (in_fd_ >= 0) ::close(in_fd_);
    in_fd_ = -1;
  }

  std::string ReadLine() {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(out_fd_, chunk, sizeof(chunk));
      EXPECT_GT(n, 0) << "child closed the pipe mid-read";
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  json::Value ReadJson() {
    json::Value value;
    const std::string line = ReadLine();
    EXPECT_TRUE(json::Parse(line, &value).ok()) << "bad line: " << line;
    return value;
  }

  int Wait() {
    int status = -1;
    EXPECT_EQ(::waitpid(pid_, &status, 0), pid_);
    pid_ = -1;
    return status;
  }

 private:
  pid_t pid_ = -1;
  int in_fd_ = -1, out_fd_ = -1;
  std::string buffer_;
};

/// A free loopback port: bind to 0, read back the assignment, release it.
int FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// Connects to 127.0.0.1:port, retrying while the server starts up.
int ConnectWithRetry(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    if (fd >= 0) ::close(fd);
    ::usleep(50 * 1000);
  }
  return -1;
}

/// Line-framed NDJSON client over a connected socket.
class SocketClient {
 public:
  explicit SocketClient(int fd) : fd_(fd) {}
  ~SocketClient() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void Send(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::write(fd_, framed.data(), framed.size()),
              static_cast<ssize_t>(framed.size()));
  }

  json::Value ReadJson() {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        json::Value value;
        EXPECT_TRUE(json::Parse(line, &value).ok()) << "bad line: " << line;
        return value;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      EXPECT_GT(n, 0) << "server closed the socket mid-read";
      if (n <= 0) return json::Value();
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// The value of an unlabeled sample line `<name> <value>` in an exposition.
double PromValue(const std::string& text, const std::string& name) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::atof(line.c_str() + name.size() + 1);
    }
  }
  ADD_FAILURE() << "no sample " << name << " in exposition:\n" << text;
  return -1.0;
}

std::string OneRowRequest(int id, size_t dim, double fill) {
  std::string row = "[";
  for (size_t d = 0; d < dim; ++d) {
    if (d != 0) row += ",";
    row += std::to_string(fill + static_cast<double>(d) * 0.1);
  }
  row += "]";
  return "{\"op\":\"topk\",\"id\":" + std::to_string(id) + ",\"rows\":[" +
         row + "]}";
}

TEST(ObservabilityServeTest, MetricsOpAndHttpScrapeAgreeWithStats) {
  const std::string dir = TempDir();
  const std::string ckpt = WriteCheckpoint(dir, 100, 8, 21);
  const int port = FreePort();

  const pid_t pid = ::fork();
  if (pid == 0) {
    std::string bin = OPENEA_ALIGN_SERVE;
    std::string a1 = "--checkpoint=" + ckpt;
    std::string a2 = "--source=exact";
    std::string a3 = "--k=3";
    std::string a4 = "--listen=" + std::to_string(port);
    char* argv[] = {bin.data(), a1.data(), a2.data(), a3.data(), a4.data(),
                    nullptr};
    ::execv(argv[0], argv);
    ::_exit(127);
  }
  ASSERT_GT(pid, 0);

  double stats_p95 = -1.0, stats_count = -1.0;
  {
    const int fd = ConnectWithRetry(port);
    ASSERT_GE(fd, 0) << "could not connect to align-serve";
    SocketClient client(fd);
    const json::Value hello = client.ReadJson();
    ASSERT_NE(hello.Find("event"), nullptr);
    EXPECT_EQ(hello.Find("event")->string_value(), "ready");

    // Five singleton requests, each answered with its server request id.
    for (int i = 0; i < 5; ++i) {
      client.Send(OneRowRequest(i, 8, 0.1 * (i + 1)));
      const json::Value response = client.ReadJson();
      ASSERT_NE(response.Find("ok"), nullptr);
      ASSERT_TRUE(response.Find("ok")->bool_value());
      ASSERT_NE(response.Find("req"), nullptr);
      EXPECT_EQ(response.Find("req")->string_value(),
                "r-" + std::to_string(i + 1));
    }

    client.Send("{\"op\":\"stats\",\"id\":\"s\"}");
    const json::Value stats = client.ReadJson();
    ASSERT_TRUE(stats.Find("ok")->bool_value());
    const json::Value* window = stats.Find("window");
    ASSERT_NE(window, nullptr);
    for (const char* key : {"seconds", "qps", "requests_per_sec", "count",
                            "p50_ms", "p95_ms", "p99_ms"}) {
      ASSERT_NE(window->Find(key), nullptr) << key;
      EXPECT_TRUE(window->Find(key)->is_number()) << key;
    }
    stats_count = window->Find("count")->number();
    stats_p95 = window->Find("p95_ms")->number();
    EXPECT_EQ(stats_count, 5.0);
    EXPECT_GT(window->Find("requests_per_sec")->number(), 0.0);
    EXPECT_GT(window->Find("qps")->number(), 0.0);
    EXPECT_GE(window->Find("p95_ms")->number(),
              window->Find("p50_ms")->number());

    // The metrics op renders the same registry as Prometheus text.
    client.Send("{\"op\":\"metrics\",\"id\":\"m\"}");
    const json::Value metrics = client.ReadJson();
    ASSERT_TRUE(metrics.Find("ok")->bool_value());
    EXPECT_EQ(metrics.Find("format")->string_value(), "prometheus");
    const std::string& text = metrics.Find("text")->string_value();
    EXPECT_NE(text.find("# TYPE serve_ops counter"), std::string::npos);
    EXPECT_NE(text.find("serve_ops{op=\"topk\"} 5\n"), std::string::npos);
    EXPECT_NEAR(PromValue(text, "serve_latency_ms_window_p95"), stats_p95,
                1e-9);
    EXPECT_EQ(PromValue(text, "serve_latency_ms_window_count"), stats_count);
    client.Close();  // EOF: the server re-accepts.
  }

  // A raw HTTP connection on the same port gets the exposition.
  {
    const int fd = ConnectWithRetry(port);
    ASSERT_GE(fd, 0);
    const std::string request =
        "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char chunk[4096];
    ssize_t n;
    while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
      response.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    const size_t body_at = response.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    const std::string body = response.substr(body_at + 4);
    EXPECT_NE(body.find("# TYPE serve_ops counter"), std::string::npos);
    // No latency observations happened since the stats call, so the
    // windowed quantile is identical across all three surfaces.
    EXPECT_NEAR(PromValue(body, "serve_latency_ms_window_p95"), stats_p95,
                1e-9);
    EXPECT_EQ(PromValue(body, "serve_latency_ms_window_count"), stats_count);
  }

  // An unknown path is a 404, and the server keeps serving afterwards.
  {
    const int fd = ConnectWithRetry(port);
    ASSERT_GE(fd, 0);
    const std::string request = "GET /nope HTTP/1.1\r\n\r\n";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char chunk[1024];
    ssize_t n;
    while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
      response.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    EXPECT_EQ(response.rfind("HTTP/1.1 404", 0), 0u);
  }

  // A final NDJSON session shuts the accept loop down.
  {
    const int fd = ConnectWithRetry(port);
    ASSERT_GE(fd, 0);
    SocketClient client(fd);
    client.ReadJson();  // hello
    client.Send("{\"op\":\"shutdown\"}");
    const json::Value bye = client.ReadJson();
    EXPECT_EQ(bye.Find("event")->string_value(), "bye");
  }
  int status = -1;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ObservabilityServeTest, RequestIdsThreadThroughTraceAndSlowLogs) {
  const std::string dir = TempDir();
  const std::string ckpt = WriteCheckpoint(dir, 60, 8, 23);
  const std::string trace_path = dir + "/trace.json";
  const std::string stderr_path = dir + "/server.log";

  std::set<std::string> req_ids;
  {
    // A sub-microsecond slow threshold makes every request "slow", so each
    // one must produce a structured warning line.
    ChildProcess server(OPENEA_ALIGN_SERVE,
                        {"--checkpoint=" + ckpt, "--source=exact", "--k=2",
                         "--trace=" + trace_path, "--log-format=json",
                         "--slow-ms=0.000001"},
                        stderr_path);
    server.ReadJson();  // hello
    for (int i = 0; i < 3; ++i) {
      server.Send(OneRowRequest(i, 8, 0.2 * (i + 1)));
      const json::Value response = server.ReadJson();
      ASSERT_TRUE(response.Find("ok")->bool_value());
      ASSERT_NE(response.Find("req"), nullptr);
      req_ids.insert(response.Find("req")->string_value());
    }
    EXPECT_EQ(req_ids.size(), 3u);
    server.Send("{\"op\":\"shutdown\"}");
    server.ReadJson();  // bye
    server.CloseInput();
    const int status = server.Wait();
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  // Every topk response's request id appears as args.ctx of a
  // serve_request span in the exported timeline.
  json::Value trace_doc;
  ASSERT_TRUE(json::ReadFile(trace_path, &trace_doc).ok());
  const json::Value* events = trace_doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<std::string> span_ctx;
  for (const json::Value& event : events->array()) {
    const json::Value* name = event.Find("name");
    const json::Value* ph = event.Find("ph");
    if (name == nullptr || ph == nullptr) continue;
    if (name->string_value() != "serve_request" ||
        ph->string_value() != "B") {
      continue;
    }
    const json::Value* args = event.Find("args");
    ASSERT_NE(args, nullptr) << "serve_request span without args";
    const json::Value* ctx = args->Find("ctx");
    ASSERT_NE(ctx, nullptr) << "serve_request span without ctx";
    span_ctx.insert(ctx->string_value());
  }
  std::set<std::string> want_ctx;
  for (const std::string& id : req_ids) want_ctx.insert("req:" + id);
  EXPECT_EQ(span_ctx, want_ctx);

  // The slow-request log lines parse as JSON and carry the same ids.
  std::ifstream log(stderr_path);
  ASSERT_TRUE(log.good());
  std::set<std::string> slow_ids;
  std::string line;
  while (std::getline(log, line)) {
    if (line.empty() || line[0] != '{') continue;
    json::Value entry;
    ASSERT_TRUE(json::Parse(line, &entry).ok()) << "bad log line: " << line;
    const json::Value* msg = entry.Find("msg");
    if (msg == nullptr || msg->string_value() != "slow request") continue;
    EXPECT_EQ(entry.Find("level")->string_value(), "warning");
    EXPECT_FALSE(entry.Find("src")->string_value().empty());
    const json::Value* fields = entry.Find("fields");
    ASSERT_NE(fields, nullptr);
    ASSERT_NE(fields->Find("req"), nullptr);
    EXPECT_TRUE(fields->Find("ms")->is_number());
    EXPECT_TRUE(fields->Find("rows")->is_number());
    slow_ids.insert(fields->Find("req")->string_value());
  }
  EXPECT_EQ(slow_ids, req_ids);
}

TEST(ObservabilityBenchTest, HeartbeatLinesAndWindowedJsonFromCvRun) {
  const std::string dir = TempDir();
  const std::string json_path = dir + "/BENCH_main_results.json";
  const std::string stderr_path = dir + "/bench.log";

  {
    ChildProcess bench(OPENEA_BENCH_MAIN_RESULTS,
                       {"--scale=small", "--folds=1", "--epochs=2", "--seed=7",
                        "--threads=2", "--approaches=MTransE",
                        "--json=" + json_path, "--metrics-interval=1",
                        "--log-format=json"},
                       stderr_path);
    bench.CloseInput();
    const int status = bench.Wait();
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }

  // Heartbeats: one immediately at start and one at stop are guaranteed,
  // each a parseable JSON object with the progress fields.
  std::ifstream log(stderr_path);
  ASSERT_TRUE(log.good());
  int heartbeats = 0;
  std::string line;
  while (std::getline(log, line)) {
    if (line.empty() || line[0] != '{') continue;
    json::Value entry;
    ASSERT_TRUE(json::Parse(line, &entry).ok()) << "bad log line: " << line;
    const json::Value* msg = entry.Find("msg");
    if (msg == nullptr || msg->string_value() != "heartbeat") continue;
    ++heartbeats;
    EXPECT_EQ(entry.Find("level")->string_value(), "info");
    const json::Value* fields = entry.Find("fields");
    ASSERT_NE(fields, nullptr);
    ASSERT_NE(fields->Find("uptime_s"), nullptr);
    EXPECT_GE(fields->Find("uptime_s")->number(), 0.0);
    ASSERT_NE(fields->Find("rss_mb"), nullptr);
    EXPECT_GT(fields->Find("rss_mb")->number(), 0.0);
  }
  EXPECT_GE(heartbeats, 2);

  // The emitted document still passes the schema validator (which now also
  // checks the windows section) and carries the live-metrics series.
  const std::string validate =
      std::string(OPENEA_VALIDATE_BENCH_JSON) + " " + json_path;
  EXPECT_EQ(std::system(validate.c_str()), 0);
  json::Value doc;
  ASSERT_TRUE(json::ReadFile(json_path, &doc).ok());
  const json::Value* windows = doc.Find("windows");
  ASSERT_NE(windows, nullptr);
  EXPECT_NE(windows->Find("mem/rss_mb"), nullptr);
  const json::Value* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Find("heartbeat/epoch"), nullptr);
  EXPECT_GT(gauges->Find("heartbeat/epoch")->number(), 0.0);
  ASSERT_NE(gauges->Find("heartbeat/fold"), nullptr);
  ASSERT_NE(gauges->Find("mem/sampled_peak_rss_mb"), nullptr);
  EXPECT_GT(gauges->Find("mem/sampled_peak_rss_mb")->number(), 0.0);
}

}  // namespace
}  // namespace openea
