#include <gtest/gtest.h>

#include "src/core/benchmark.h"
#include "src/core/registry.h"

namespace openea {
namespace {

// Tests for the beyond-the-paper extensions: the AliNet approach (slated
// for future OpenEA releases in Sect. 5.1) and the registry integration of
// the unsupervised exploration.

TEST(ExtensionsTest, AliNetRegistersAndTrains) {
  core::TrainConfig config;
  config.dim = 16;
  config.max_epochs = 60;
  auto approach = core::CreateApproachOrDie("AliNet", config);
  ASSERT_NE(approach, nullptr);
  EXPECT_EQ(approach->name(), "AliNet");
  EXPECT_EQ(approach->requirements().relation_triples,
            core::Requirement::kMandatory);

  const auto dataset = core::BuildBenchmarkDataset(
      datagen::HeterogeneityProfile::EnFr(),
      core::ScalePreset{"tiny", 500, 250, 25.0}, false, 5);
  const auto result = core::RunCrossValidation("AliNet", dataset, config, 1);
  EXPECT_GT(result.hits1.mean, 0.02);  // Clearly above random.
}

TEST(ExtensionsTest, UnsupervisedEaRegistered) {
  core::TrainConfig config;
  auto approach = core::CreateApproachOrDie("UnsupervisedEA", config);
  ASSERT_NE(approach, nullptr);
  EXPECT_EQ(approach->name(), "UnsupervisedEA");
}

TEST(ExtensionsTest, ComplExChassisRegistered) {
  core::TrainConfig config;
  auto approach = core::CreateApproachOrDie("MTransE-ComplEx", config);
  ASSERT_NE(approach, nullptr);
  EXPECT_EQ(approach->name(), "MTransE-ComplEx");
}

TEST(ExtensionsTest, ExtensionsAreNotInThePaperTwelve) {
  for (const auto& name : core::ApproachNames()) {
    EXPECT_NE(name, "AliNet");
    EXPECT_NE(name, "UnsupervisedEA");
  }
  EXPECT_EQ(core::ApproachNames().size(), 12u);
}

}  // namespace
}  // namespace openea
