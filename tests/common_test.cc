#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"

namespace openea {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All 7 values should occur in 1000 draws.
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ZipfFavorsSmallIndices) {
  Rng rng(13);
  const size_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.NextZipf(n, 1.2)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  // All samples in range (guaranteed by implementation, sanity check).
  const int total = std::accumulate(counts.begin(), counts.end(), 0);
  EXPECT_EQ(total, 20000);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  auto copy = items;
  rng.Shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, items);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  std::vector<int> items(30);
  std::iota(items.begin(), items.end(), 0);
  const auto sample = rng.SampleWithoutReplacement(items, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // Child stream should not simply replay the parent stream.
  Rng b(5);
  b.NextU64();  // Parent consumed one value while forking.
  EXPECT_NE(child.NextU64(), b.NextU64());
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("dim must be > 0");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: dim must be > 0");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  const auto parts = SplitWhitespace("  hello   world \t x ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[2], "x");
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, CaseAndAffixes) {
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringsTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1000), "-1,000");
  EXPECT_EQ(FormatWithCommas(999), "999");
}

TEST(StringsTest, EditDistanceBasics) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
}

TEST(StringsTest, EditSimilarityBounds) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_GT(EditSimilarity("paris", "parris"), 0.8);
  EXPECT_LT(EditSimilarity("abc", "xyz"), 0.01);
}

TEST(StringsTest, TrigramJaccardOrderInsensitiveToSmallEdits) {
  const double close = TrigramJaccard("knowledge", "knowledg");
  const double far = TrigramJaccard("knowledge", "zzzzz");
  EXPECT_GT(close, far);
  EXPECT_DOUBLE_EQ(TrigramJaccard("abc", "abc"), 1.0);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  volatile double x = 0.0;
  for (int i = 0; i < 10000; ++i) x = x + 1.0;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
}

TEST(TablePrinterTest, CsvExportSkipsSeparatorsAndQuotes) {
  TablePrinter table({"Approach", "Note"});
  table.AddRow({"MTransE", "plain"});
  table.AddSeparator();
  table.AddRow({"BootEA", "has, comma"});
  table.AddRow({"RDGCN", "has \"quote\""});
  const std::string csv = table.ToCsv();
  EXPECT_EQ(csv,
            "Approach,Note\n"
            "MTransE,plain\n"
            "BootEA,\"has, comma\"\n"
            "RDGCN,\"has \"\"quote\"\"\"\n");
}

TEST(TablePrinterTest, CsvPadsShortRows) {
  TablePrinter table({"A", "B", "C"});
  table.AddRow({"x"});
  EXPECT_EQ(table.ToCsv(), "A,B,C\nx,,\n");
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table({"Approach", "Hits@1"});
  table.AddRow({"MTransE", "0.247"});
  table.AddSeparator();
  table.AddRow({"RDGCN", "0.755"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("MTransE"), std::string::npos);
  EXPECT_NE(out.find("0.755"), std::string::npos);
  EXPECT_NE(out.find("+"), std::string::npos);
}

}  // namespace
}  // namespace openea
