#include <gtest/gtest.h>

#include "src/approaches/unsupervised.h"
#include "src/datagen/kg_pair.h"
#include "src/eval/folds.h"
#include "src/eval/metrics.h"

namespace openea::approaches {
namespace {

core::AlignmentTask MakeTask(const datagen::DatasetPair& pair,
                             const eval::FoldSplit& fold) {
  core::AlignmentTask task;
  task.kg1 = &pair.kg1;
  task.kg2 = &pair.kg2;
  task.train = fold.train;
  task.valid = fold.valid;
  task.test = fold.test;
  return task;
}

TEST(UnsupervisedEaTest, BeatsRandomWithoutSeeds) {
  datagen::SyntheticKgConfig config;
  config.num_entities = 300;
  config.num_relations = 15;
  config.num_attributes = 12;
  config.vocabulary_size = 150;
  config.seed = 31;
  const auto pair = GenerateDatasetPair(
      config, datagen::HeterogeneityProfile::DbpYg(), 31);
  const auto folds = eval::MakeFolds(pair.reference);
  core::AlignmentTask task = MakeTask(pair, folds[0]);

  core::TrainConfig train_config;
  train_config.dim = 16;
  train_config.max_epochs = 60;
  UnsupervisedEa approach(train_config);
  EXPECT_EQ(approach.requirements().pre_aligned_entities,
            core::Requirement::kNotApplicable);

  const auto model = approach.Train(task);
  const auto metrics = eval::EvaluateRanking(
      model, task.test, align::DistanceMetric::kCosine);
  // Random Hits@1 would be ~1/|test|; literal harvest must do far better
  // on the literal-rich D-Y profile.
  EXPECT_GT(metrics.hits1, 0.2);
}

TEST(UnsupervisedEaTest, IgnoresProvidedSeeds) {
  // Identical results with and without train seeds (they must be unused).
  datagen::SyntheticKgConfig config;
  config.num_entities = 250;
  config.num_relations = 12;
  config.num_attributes = 10;
  config.vocabulary_size = 120;
  config.seed = 17;
  const auto pair = GenerateDatasetPair(
      config, datagen::HeterogeneityProfile::DbpYg(), 17);
  const auto folds = eval::MakeFolds(pair.reference);
  core::AlignmentTask with_seeds = MakeTask(pair, folds[0]);
  core::AlignmentTask without_seeds = with_seeds;
  without_seeds.train.clear();

  core::TrainConfig train_config;
  train_config.dim = 16;
  train_config.max_epochs = 30;
  const auto model_a = UnsupervisedEa(train_config).Train(with_seeds);
  const auto model_b = UnsupervisedEa(train_config).Train(without_seeds);
  ASSERT_EQ(model_a.emb1.size(), model_b.emb1.size());
  for (size_t i = 0; i < model_a.emb1.size(); ++i) {
    ASSERT_FLOAT_EQ(model_a.emb1.Data()[i], model_b.emb1.Data()[i]);
  }
}

}  // namespace
}  // namespace openea::approaches
