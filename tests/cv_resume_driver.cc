// Subprocess driver for the kill/resume fault-injection tests
// (tests/fault_injection_test.cc). Runs one fault-tolerant cross-validation
// on a tiny deterministic dataset and serializes every deterministic field
// of the result to --out, so the harness can compare a killed-and-resumed
// run against an uninterrupted one byte for byte. Wall-clock fields and the
// `resumed` bookkeeping flag are deliberately excluded: the determinism
// contract covers metrics, health records, traces, embeddings, and the test
// split — not timings.
//
// Flags:
//   --approach=NAME      registered approach (default MTransE)
//   --folds=N            folds to run (default 3)
//   --epochs=N           training epochs (default 10)
//   --seed=N             master seed (default 7)
//   --threads=N          compute-core threads (default 1)
//   --checkpoint-dir=P   enable fold checkpoints under P
//   --shard-dir=P        evaluate through shard-banked tables under P
//   --resume             resume from an existing checkpoint
//   --fault=SPEC         arm a fault point (point:n[:kill|fail][:repeat])
//   --out=P              write the result serialization to P

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/common/checkpoint.h"
#include "src/common/fault.h"
#include "src/common/strings.h"
#include "src/core/benchmark.h"
#include "src/core/registry.h"

namespace openea {
namespace {

std::string SerializeResult(const core::CrossValidationResult& result) {
  checkpoint::BinaryWriter writer;
  writer.PutString(result.approach);
  writer.PutString(result.dataset);
  for (const eval::MeanStd* ms :
       {&result.hits1, &result.hits5, &result.mr, &result.mrr}) {
    writer.PutDouble(ms->mean);
    writer.PutDouble(ms->std);
  }
  writer.PutU64(result.fold_health.size());
  for (const core::FoldHealth& health : result.fold_health) {
    writer.PutI64(health.fold);
    writer.PutI64(health.retries);
    writer.PutBool(health.degraded);
    writer.PutU32(static_cast<uint32_t>(health.verdict));
  }
  writer.PutU64(result.trace.size());
  for (const core::IterationStat& stat : result.trace) {
    writer.PutI64(stat.iteration);
    writer.PutDouble(stat.precision);
    writer.PutDouble(stat.recall);
    writer.PutDouble(stat.f1);
  }
  checkpoint::PutMatrix(writer, result.first_fold_model.emb1);
  checkpoint::PutMatrix(writer, result.first_fold_model.emb2);
  writer.PutU64(result.first_fold_test.size());
  for (const kg::AlignmentPair& pair : result.first_fold_test) {
    writer.PutI64(pair.left);
    writer.PutI64(pair.right);
  }
  return writer.TakeBuffer();
}

int Run(int argc, char** argv) {
  std::string approach = "MTransE";
  int folds = 3;
  int epochs = 10;
  uint64_t seed = 7;
  int threads = 1;
  std::string out_path;
  core::CheckpointConfig checkpoint_config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--approach=")) {
      approach = arg.substr(11);
    } else if (StartsWith(arg, "--folds=")) {
      folds = std::atoi(arg.c_str() + 8);
    } else if (StartsWith(arg, "--epochs=")) {
      epochs = std::atoi(arg.c_str() + 9);
    } else if (StartsWith(arg, "--seed=")) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (StartsWith(arg, "--threads=")) {
      threads = std::atoi(arg.c_str() + 10);
    } else if (StartsWith(arg, "--checkpoint-dir=")) {
      checkpoint_config.directory = arg.substr(17);
    } else if (StartsWith(arg, "--shard-dir=")) {
      checkpoint_config.shard_dir = arg.substr(12);
    } else if (arg == "--resume") {
      checkpoint_config.resume = true;
    } else if (StartsWith(arg, "--fault=")) {
      const Status armed = fault::ArmFromFlag(arg.substr(8));
      if (!armed.ok()) {
        std::fprintf(stderr, "bad --fault: %s\n", armed.ToString().c_str());
        return 2;
      }
    } else if (StartsWith(arg, "--out=")) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const auto dataset = core::BuildBenchmarkDataset(
      datagen::HeterogeneityProfile::EnFr(),
      core::ScalePreset{"tiny", 500, 250, 25.0}, false, 5);
  core::TrainConfig config;
  config.dim = 16;
  config.max_epochs = epochs;
  config.seed = seed;
  config.threads = threads;

  const core::CrossValidationResult result =
      core::RunCrossValidation(approach, dataset, config, folds,
                               checkpoint_config);

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    const std::string bytes = SerializeResult(result);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace openea

int main(int argc, char** argv) { return openea::Run(argc, argv); }
