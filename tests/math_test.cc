#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/math/embedding_table.h"
#include "src/math/matrix.h"
#include "src/math/vec.h"

namespace openea::math {
namespace {

TEST(VecTest, DotAndNorms) {
  std::vector<float> a = {1, 2, 3};
  std::vector<float> b = {4, -5, 6};
  EXPECT_FLOAT_EQ(Dot(a, b), 4 - 10 + 18);
  EXPECT_FLOAT_EQ(SquaredL2Norm(a), 14.0f);
  EXPECT_FLOAT_EQ(L2Norm(a), std::sqrt(14.0f));
  EXPECT_FLOAT_EQ(L1Norm(b), 15.0f);
}

TEST(VecTest, AxpyAndScale) {
  std::vector<float> x = {1, 1};
  std::vector<float> y = {2, 3};
  Axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_FLOAT_EQ(y[1], 5.0f);
  Scale(0.5f, std::span<float>(y));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
}

TEST(VecTest, AddSubHadamard) {
  std::vector<float> a = {1, 2}, b = {3, 4}, out(2);
  Add(a, b, out);
  EXPECT_FLOAT_EQ(out[1], 6.0f);
  Sub(a, b, out);
  EXPECT_FLOAT_EQ(out[0], -2.0f);
  Hadamard(a, b, out);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
}

TEST(VecTest, Distances) {
  std::vector<float> a = {0, 0}, b = {3, 4};
  EXPECT_FLOAT_EQ(EuclideanDistance(a, b), 5.0f);
  EXPECT_FLOAT_EQ(SquaredEuclideanDistance(a, b), 25.0f);
  EXPECT_FLOAT_EQ(ManhattanDistance(a, b), 7.0f);
}

TEST(VecTest, CosineSimilarityProperties) {
  std::vector<float> a = {1, 0}, b = {0, 1}, c = {2, 0}, zero = {0, 0};
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0f, 1e-6);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(CosineSimilarity(a, zero), 0.0f);
}

TEST(VecTest, NormalizeL2MakesUnitNorm) {
  std::vector<float> a = {3, 4};
  NormalizeL2(std::span<float>(a));
  EXPECT_NEAR(L2Norm(a), 1.0f, 1e-6);
  std::vector<float> zero = {0, 0};
  NormalizeL2(std::span<float>(zero));  // Must not produce NaN.
  EXPECT_FLOAT_EQ(zero[0], 0.0f);
}

TEST(VecTest, SoftmaxSumsToOneAndIsStable) {
  std::vector<float> x = {1000.0f, 1001.0f, 999.0f};
  SoftmaxInPlace(std::span<float>(x));
  float sum = 0;
  for (float v : x) {
    EXPECT_FALSE(std::isnan(v));
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);
  EXPECT_GT(x[1], x[0]);
  EXPECT_GT(x[0], x[2]);
}

TEST(VecTest, SigmoidSymmetricAndBounded) {
  EXPECT_NEAR(Sigmoid(0.0f), 0.5f, 1e-6);
  EXPECT_NEAR(Sigmoid(50.0f), 1.0f, 1e-6);
  EXPECT_NEAR(Sigmoid(-50.0f), 0.0f, 1e-6);
  EXPECT_NEAR(Sigmoid(2.0f) + Sigmoid(-2.0f), 1.0f, 1e-6);
}

TEST(MatrixTest, GemmMatchesHandComputation) {
  Matrix a(2, 3), b(3, 2), c;
  float va[] = {1, 2, 3, 4, 5, 6};
  float vb[] = {7, 8, 9, 10, 11, 12};
  std::copy(va, va + 6, a.Data().begin());
  std::copy(vb, vb + 6, b.Data().begin());
  Gemm(a, b, c);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(MatrixTest, TransposedGemmsAgreeWithExplicitTranspose) {
  Rng rng(3);
  Matrix a(4, 3), b(4, 5);
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  Matrix expected, got;
  Gemm(a.Transposed(), b, expected);
  GemmTransposeA(a, b, got);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got.Data()[i], expected.Data()[i], 1e-5);
  }
  Matrix c(5, 3);
  c.FillUniform(rng, 1.0f);
  Gemm(a, c.Transposed(), expected);
  GemmTransposeB(a, c, got);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got.Data()[i], expected.Data()[i], 1e-5);
  }
}

TEST(MatrixTest, MatVecAndTransposeVec) {
  Matrix m(2, 3);
  float vm[] = {1, 2, 3, 4, 5, 6};
  std::copy(vm, vm + 6, m.Data().begin());
  std::vector<float> x = {1, 1, 1}, y(2);
  MatVec(m, x, y);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 15.0f);
  std::vector<float> z(3);
  MatTransposeVec(m, y, z);
  EXPECT_FLOAT_EQ(z[0], 6.0f + 60.0f);
}

TEST(MatrixTest, IdentityAndFrobenius) {
  Matrix m(3, 3);
  m.FillIdentity();
  EXPECT_FLOAT_EQ(m.FrobeniusNorm(), std::sqrt(3.0f));
  Matrix a(2, 2);
  a.Fill(2.0f);
  a.AddScaled(a, 1.0f);  // a = 2a.
  EXPECT_FLOAT_EQ(a.At(0, 0), 4.0f);
  a.Scale(0.25f);
  EXPECT_FLOAT_EQ(a.At(1, 1), 1.0f);
}

TEST(MatrixTest, LeastSquaresMapRecoversLinearMap) {
  // Build y = x * M_true and check LeastSquaresMap recovers M_true.
  Rng rng(11);
  const size_t n = 50, d = 6;
  Matrix x(n, d), m_true(d, d), y;
  x.FillUniform(rng, 1.0f);
  m_true.FillUniform(rng, 1.0f);
  Gemm(x, m_true, y);
  Matrix m = LeastSquaresMap(x, y, 1e-6f);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      EXPECT_NEAR(m.At(i, j), m_true.At(i, j), 1e-2);
    }
  }
}

TEST(EmbeddingTableTest, UnitInitHasUnitRows) {
  Rng rng(5);
  EmbeddingTable table(10, 8, InitScheme::kUnit, rng);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_NEAR(L2Norm(table.Row(r)), 1.0f, 1e-5);
  }
}

TEST(EmbeddingTableTest, OrthogonalInitHasOrthonormalRows) {
  Rng rng(5);
  EmbeddingTable table(6, 8, InitScheme::kOrthogonal, rng);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(L2Norm(table.Row(i)), 1.0f, 1e-4);
    for (size_t j = 0; j < i; ++j) {
      EXPECT_NEAR(Dot(table.Row(i), table.Row(j)), 0.0f, 1e-4);
    }
  }
}

TEST(EmbeddingTableTest, AdaGradStepReducesLossDirection) {
  Rng rng(5);
  EmbeddingTable table(1, 4, InitScheme::kXavier, rng);
  std::vector<float> before(table.Row(0).begin(), table.Row(0).end());
  std::vector<float> grad = {1.0f, -1.0f, 0.5f, 0.0f};
  table.ApplyGradient(0, grad, 0.1f);
  const auto after = table.Row(0);
  EXPECT_LT(after[0], before[0]);   // Positive gradient -> decrease.
  EXPECT_GT(after[1], before[1]);   // Negative gradient -> increase.
  EXPECT_FLOAT_EQ(after[3], before[3]);  // Zero gradient -> unchanged.
}

TEST(EmbeddingTableTest, AdaGradShrinksEffectiveStep) {
  Rng rng(5);
  EmbeddingTable table(1, 1, InitScheme::kXavier, rng);
  std::vector<float> grad = {1.0f};
  const float x0 = table.Row(0)[0];
  table.ApplyGradient(0, grad, 0.1f);
  const float step1 = x0 - table.Row(0)[0];
  const float x1 = table.Row(0)[0];
  table.ApplyGradient(0, grad, 0.1f);
  const float step2 = x1 - table.Row(0)[0];
  EXPECT_GT(step1, step2);  // Accumulated squared gradient shrinks steps.
}

TEST(EmbeddingTableTest, ClampRowNormOnlyShrinks) {
  Rng rng(5);
  EmbeddingTable table(2, 4, InitScheme::kXavier, rng);
  auto row = table.Row(0);
  Fill(row, 10.0f);
  table.ClampRowNorm(0);
  EXPECT_NEAR(L2Norm(table.Row(0)), 1.0f, 1e-5);
  auto small = table.Row(1);
  Fill(small, 0.01f);
  table.ClampRowNorm(1);
  EXPECT_LT(L2Norm(table.Row(1)), 0.5f);  // Unchanged, not scaled up.
}

TEST(EmbeddingTableTest, CloneValuesCopiesDataResetsState) {
  Rng rng(5);
  EmbeddingTable table(3, 4, InitScheme::kXavier, rng);
  std::vector<float> grad = {1, 1, 1, 1};
  table.ApplyGradient(0, grad, 0.1f);
  EmbeddingTable clone = table.CloneValues();
  for (size_t r = 0; r < 3; ++r) {
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_FLOAT_EQ(clone.Row(r)[i], table.Row(r)[i]);
    }
  }
  // Fresh AdaGrad state: first clone step is larger than table's next step.
  const float t0 = table.Row(0)[0];
  table.ApplyGradient(0, grad, 0.1f);
  const float table_step = t0 - table.Row(0)[0];
  const float c0 = clone.Row(0)[0];
  clone.ApplyGradient(0, grad, 0.1f);
  const float clone_step = c0 - clone.Row(0)[0];
  EXPECT_GT(clone_step, table_step);
}

}  // namespace
}  // namespace openea::math
